module Nat = Dstress_bignum.Nat

let xor_bytes a b =
  if Bytes.length a <> Bytes.length b then invalid_arg "Ot.xor_bytes";
  Bytes.init (Bytes.length a) (fun i ->
      Char.chr (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i)))

(* random_point is a pure function of (p, tag), and every base OT of a run
   asks for the same tag — memoize it rather than re-hashing ~p bits of
   digest output per OT. *)
let point_cache : (Nat.t * string, Nat.t) Hashtbl.t = Hashtbl.create 8
let point_lock = Mutex.create ()

let random_point grp tag =
  (* Hash the tag into Z_p and square to land in the order-q subgroup of a
     safe-prime group. Retry (by extending the tag) until nonzero. *)
  let p = Group.p grp in
  let key = (p, tag) in
  let cached =
    Mutex.lock point_lock;
    let r = Hashtbl.find_opt point_cache key in
    Mutex.unlock point_lock;
    r
  in
  match cached with
  | Some pt -> pt
  | None ->
      let rec go tag =
        let raw = ref (Bytes.of_string "") in
        while 8 * Bytes.length !raw < Nat.num_bits p + 64 do
          let i = Bytes.length !raw / 32 in
          raw := Bytes.cat !raw (Sha256.digest (Bytes.of_string (tag ^ ":" ^ string_of_int i)))
        done;
        let candidate = Nat.rem (Nat.of_bytes_be !raw) p in
        if Nat.is_zero candidate || Nat.is_one candidate then go (tag ^ "#")
        else Group.mul grp candidate candidate
      in
      let pt = go tag in
      Mutex.lock point_lock;
      if Hashtbl.length point_cache > 64 then Hashtbl.reset point_cache;
      Hashtbl.replace point_cache key pt;
      Mutex.unlock point_lock;
      pt

(* Key-derivation for the hashed-ElGamal KEM: expand H(kem || index) to the
   message length. *)
let kem_pad kem idx len =
  let seed = Sha256.digest (Bytes.cat (Nat.to_bytes_be kem) (Bytes.make 1 (Char.chr idx))) in
  Prg.bytes (Prg.create seed) len

let base_ot grp meter ~sender_prg ~receiver_prg ~m0 ~m1 ~choice =
  let len = Bytes.length m0 in
  if Bytes.length m1 <> len then invalid_arg "Ot.base_ot: message length mismatch";
  let c = random_point grp "dstress-base-ot" in
  let ebytes = Group.element_bytes grp in
  (* Receiver: one real key pair; the other public key is forced to
     C / pk, whose secret key the receiver cannot know. *)
  let x = Group.random_exponent receiver_prg grp in
  let pk_real = Group.pow_g grp x in
  let pk0 = if choice then Group.mul grp c (Group.inv grp pk_real) else pk_real in
  Xfer.add_b_to_a meter ebytes;
  (* Sender: reconstruct pk1 and encrypt each message to its key. *)
  let pk1 = Group.mul grp c (Group.inv grp pk0) in
  let encrypt_to pk m idx =
    let r = Group.random_exponent sender_prg grp in
    let eph = Group.pow_g grp r in
    let kem = Group.pow grp pk r in
    (eph, xor_bytes m (kem_pad kem idx len))
  in
  let e0 = encrypt_to pk0 m0 0 and e1 = encrypt_to pk1 m1 1 in
  Xfer.add_a_to_b meter (2 * (ebytes + len));
  (* Receiver: decrypt the chosen ciphertext with the real secret key. *)
  let eph, body = if choice then e1 else e0 in
  let kem = Group.pow grp eph x in
  xor_bytes body (kem_pad kem (if choice then 1 else 0) len)

let base_ot_bit grp meter ~sender_prg ~receiver_prg ~b0 ~b1 ~choice =
  let enc b = Bytes.make 1 (if b then '\x01' else '\x00') in
  let out = base_ot grp meter ~sender_prg ~receiver_prg ~m0:(enc b0) ~m1:(enc b1) ~choice in
  Bytes.get out 0 = '\x01'
