module Nat = Dstress_bignum.Nat

(* SHA-256 in counter mode: block_i = H(key || i64). A buffer holds the
   unconsumed tail of the last block so bit/byte requests of any size are
   served without waste. *)
type t = {
  key : bytes;
  mutable counter : int64;
  mutable buffer : bytes;
  mutable pos : int;
}

let create seed = { key = Bytes.copy seed; counter = 0L; buffer = Bytes.create 0; pos = 0 }

let of_string s = create (Bytes.of_string s)

let of_prng prng = create (Dstress_util.Prng.bytes prng 32)

(* The key is never written after [create], and [refill] replaces the
   buffer wholesale rather than mutating it, so both can be shared; the
   scalar cursor fields make the copy independent. *)
let copy t = { key = t.key; counter = t.counter; buffer = t.buffer; pos = t.pos }

let next_block t =
  let ctr = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set ctr i
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical t.counter (8 * i)) 0xffL)))
  done;
  t.counter <- Int64.add t.counter 1L;
  Sha256.digest (Bytes.cat t.key ctr)

let refill t =
  t.buffer <- next_block t;
  t.pos <- 0

let next_byte t =
  if t.pos >= Bytes.length t.buffer then refill t;
  let b = Bytes.get t.buffer t.pos in
  t.pos <- t.pos + 1;
  Char.code b

(* Bulk draw: blit whole buffered blocks instead of going byte by byte.
   The output stream is identical to repeated [next_byte]. *)
let bytes t n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if t.pos >= Bytes.length t.buffer then refill t;
    let take = min (n - !filled) (Bytes.length t.buffer - t.pos) in
    Bytes.blit t.buffer t.pos out !filled take;
    t.pos <- t.pos + take;
    filled := !filled + take
  done;
  out

let bits t n =
  let nbytes = (n + 7) / 8 in
  let raw = bytes t nbytes in
  Dstress_util.Bitvec.init n (fun i ->
      (Char.code (Bytes.get raw (i / 8)) lsr (i mod 8)) land 1 = 1)

let bool t = next_byte t land 1 = 1

let seed64 s =
  let d = Sha256.digest (Bytes.of_string s) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (Char.code (Bytes.get d i))) (8 * i))
  done;
  !acc

let nat_below t bound =
  if Nat.is_zero bound then invalid_arg "Prg.nat_below: zero bound";
  let nbits = Nat.num_bits bound in
  let nbytes = (nbits + 7) / 8 in
  let excess = (8 * nbytes) - nbits in
  let rec loop () =
    let raw = bytes t nbytes in
    (* Mask the high byte down to the bound's bit-width before the
       rejection test, so acceptance probability is >= 1/2. *)
    if excess > 0 then begin
      let hi = Char.code (Bytes.get raw 0) in
      Bytes.set raw 0 (Char.chr (hi land (0xff lsr excess)))
    end;
    let v = Nat.of_bytes_be raw in
    if Nat.compare v bound < 0 then v else loop ()
  in
  loop ()
