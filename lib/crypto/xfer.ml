module Metrics = Dstress_obs.Obs.Metrics

type t = Metrics.t

let key_a_to_b = "xfer.a_to_b"
let key_b_to_a = "xfer.b_to_a"

let create () = Metrics.create ()

let add_a_to_b t n = Metrics.incr ~by:n t key_a_to_b
let add_b_to_a t n = Metrics.incr ~by:n t key_b_to_a

let a_to_b t = Metrics.counter t key_a_to_b
let b_to_a t = Metrics.counter t key_b_to_a
let total t = a_to_b t + b_to_a t

let metrics t = t

let pp ppf t = Format.fprintf ppf "a->b: %d B, b->a: %d B" (a_to_b t) (b_to_a t)
