(** Yao garbled circuits: two-party secure computation over the same
    boolean-circuit IR the GMW engine uses.

    §6 of the paper contrasts DStress with the 2PC line of work (GraphSC,
    Nayak et al.), which evaluates graph computations under garbled
    circuits; this module provides that comparison point, and it is also
    the natural MPC back end when a computation involves exactly two
    parties (e.g. a bilateral netting step between two banks).

    The construction is the modern textbook stack:
    - {b free XOR} (Kolesnikov–Schneider): a global offset [delta] with
      its lowest bit set; the two labels of every wire differ by [delta],
      so XOR and NOT gates cost nothing;
    - {b point and permute}: the low bit of a label is its (blinded) row
      index, so the evaluator decrypts exactly one of the four rows of
      each AND-gate table;
    - AND tables mask output labels with [H(label_a, label_b, gate_id)]
      (SHA-256 based);
    - the evaluator's input labels are delivered by oblivious transfer
      ({!Ot_ext}), the garbler's by direct send; outputs decode with the
      garbler's permute bits.

    Both parties run in-process with metered traffic, like everything
    else in this code base. *)

type result = {
  output : Dstress_util.Bitvec.t;
  and_tables : int;  (** garbled tables transmitted = AND-gate count *)
  table_bytes : int;
}

val execute :
  ?mode:Ot_ext.mode ->
  Group.t ->
  Xfer.t ->
  Dstress_circuit.Circuit.t ->
  garbler_bits:int ->
  garbler_input:Dstress_util.Bitvec.t ->
  evaluator_input:Dstress_util.Bitvec.t ->
  seed:string ->
  result
(** [execute grp meter c ~garbler_bits ~garbler_input ~evaluator_input]
    evaluates [c], whose first [garbler_bits] inputs belong to the
    garbler and the rest to the evaluator. Returns the cleartext outputs
    (as learned by the evaluator) plus table statistics. [meter]'s [a] is
    the garbler. Raises [Invalid_argument] on width mismatches. *)

val label_bytes : int
(** Wire-label size (16 bytes, kappa = 128). *)
