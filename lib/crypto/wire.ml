module Nat = Dstress_bignum.Nat
module Bitvec = Dstress_util.Bitvec

type reader = { buf : bytes; mutable pos : int }

let reader buf = { buf; pos = 0 }

let remaining r = Bytes.length r.buf - r.pos

let take r n =
  if remaining r < n then failwith "Wire: truncated message";
  let b = Bytes.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

(* Fixed-width big-endian natural. *)
let encode_nat_fixed width v =
  try Nat.to_bytes_be_padded v ~len:width
  with Invalid_argument _ -> failwith "Wire: value too wide"

let decode_nat_fixed width r = Nat.of_bytes_be (take r width)

let exponent_bytes grp = (Nat.num_bits (Group.q grp) + 7) / 8

let encode_element grp e = encode_nat_fixed (Group.element_bytes grp) e

let decode_element grp r =
  let e = decode_nat_fixed (Group.element_bytes grp) r in
  if not (Group.is_element grp e) then failwith "Wire: not a group element";
  e

let encode_exponent grp e = encode_nat_fixed (exponent_bytes grp) e

let decode_exponent grp r =
  let e = decode_nat_fixed (exponent_bytes grp) r in
  if Nat.compare e (Group.q grp) >= 0 then failwith "Wire: exponent out of range";
  e

let encode_ciphertext grp c =
  Bytes.cat (encode_element grp c.Elgamal.c1) (encode_element grp c.Elgamal.c2)

let decode_ciphertext grp r =
  let c1 = decode_element grp r in
  let c2 = decode_element grp r in
  { Elgamal.c1; c2 }

let encode_u32 v =
  if v < 0 then failwith "Wire: negative length";
  Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let decode_u32 r =
  let b = take r 4 in
  let byte i = Char.code (Bytes.get b i) in
  (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3

let encode_multi_bundle grp (c1, c2s) =
  Bytes.concat Bytes.empty
    (encode_u32 (List.length c2s)
    :: encode_element grp c1
    :: List.map (encode_element grp) c2s)

let decode_multi_bundle grp r =
  let count = decode_u32 r in
  if count > 1_000_000 then failwith "Wire: implausible bundle size";
  let c1 = decode_element grp r in
  let c2s = List.init count (fun _ -> decode_element grp r) in
  (c1, c2s)

let encode_signature grp s =
  Bytes.cat
    (encode_nat_fixed (exponent_bytes grp) s.Schnorr.challenge)
    (encode_nat_fixed (exponent_bytes grp) s.Schnorr.response)

let decode_signature grp r =
  let challenge = decode_exponent grp r in
  let response = decode_exponent grp r in
  { Schnorr.challenge; response }

let encode_bits v =
  let n = Bitvec.length v in
  let packed = Bytes.make ((n + 7) / 8) '\x00' in
  for i = 0 to n - 1 do
    if Bitvec.get v i then
      Bytes.set packed (i / 8)
        (Char.chr (Char.code (Bytes.get packed (i / 8)) lor (1 lsl (i mod 8))))
  done;
  Bytes.cat (encode_u32 n) packed

let decode_bits r =
  let n = decode_u32 r in
  if n > 100_000_000 then failwith "Wire: implausible bit length";
  let packed = take r ((n + 7) / 8) in
  Bitvec.init n (fun i -> (Char.code (Bytes.get packed (i / 8)) lsr (i mod 8)) land 1 = 1)

let multi_bundle_bytes grp l = 4 + ((l + 1) * Group.element_bytes grp)
