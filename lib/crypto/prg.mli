(** Deterministic pseudo-random generator built on SHA-256 in counter mode.

    Each simulated protocol party derives its key material and protocol
    randomness from a [Prg.t] seeded from its identity and the run seed,
    which keeps whole protocol executions replayable. *)

type t

val create : bytes -> t
(** [create seed] keys the generator. Any seed length is accepted. *)

val of_string : string -> t

val of_prng : Dstress_util.Prng.t -> t
(** Derive a PRG from the simulation PRNG (for test convenience). *)

val copy : t -> t
(** Independent snapshot: the copy continues the stream from the same
    position without affecting the original. The GMW preprocessing
    pipeline uses this to checkpoint per-party streams after each
    pre-generated evaluation and to restore them on consumption. *)

val next_block : t -> bytes
(** Next 32 pseudo-random bytes. Advances the counter. *)

val bytes : t -> int -> bytes
(** [bytes t n] produces [n] pseudo-random bytes. *)

val bits : t -> int -> Dstress_util.Bitvec.t
(** [bits t n] produces [n] pseudo-random bits. *)

val bool : t -> bool

val seed64 : string -> int64
(** [seed64 s] is the first 8 bytes (little-endian) of [SHA-256(s)] — a
    collision-resistant way to key a {!Dstress_util.Prng} from a string.
    Unlike [Hashtbl.hash] (which folds to ~30 bits and collides easily),
    distinct labels give independent 64-bit seeds. *)

val nat_below : t -> Dstress_bignum.Nat.t -> Dstress_bignum.Nat.t
(** Uniform natural below a positive bound, by rejection sampling. *)
