type public_key = Group.elt
type secret_key = Group.exponent

type ciphertext = { c1 : Group.elt; c2 : Group.elt }

let keygen prg grp =
  let x = Group.random_exponent prg grp in
  (x, Group.pow_g grp x)

let encrypt prg grp h m =
  let y = Group.random_exponent prg grp in
  { c1 = Group.pow_g grp y; c2 = Group.mul grp m (Group.pow grp h y) }

let decrypt grp x { c1; c2 } =
  let s = Group.pow grp c1 x in
  Group.mul grp c2 (Group.inv grp s)

let mul grp a b = { c1 = Group.mul grp a.c1 b.c1; c2 = Group.mul grp a.c2 b.c2 }

let rerandomize prg grp h c =
  let y = Group.random_exponent prg grp in
  { c1 = Group.mul grp c.c1 (Group.pow_g grp y);
    c2 = Group.mul grp c.c2 (Group.pow grp h y) }

(* Block re-randomization under one public key: the fresh ephemerals are
   drawn in ciphertext order (so a seeded PRG gives the same ciphertexts as
   a scalar loop), then both exponentiation families are batched — g^y
   through the fixed-base table, h^y through one shared-base batch. *)
let rerandomize_many prg grp h cs =
  let ys = Array.map (fun _ -> Group.random_exponent prg grp) cs in
  let gys = Group.pow_base_many grp (Group.g grp) ys in
  let hys = Group.pow_base_many grp h ys in
  Array.mapi
    (fun i c ->
      { c1 = Group.mul grp c.c1 gys.(i); c2 = Group.mul grp c.c2 hys.(i) })
    cs

(* Batch decryption under one secret key: the ephemeral exponentiations are
   independent, but the unblinding inverses collapse into one batch
   inverse. *)
let decrypt_many grp x cs =
  let ss = Group.pow_many grp (Array.map (fun c -> (c.c1, x)) cs) in
  let invs = Group.inv_many grp ss in
  Array.mapi (fun i c -> Group.mul grp c.c2 invs.(i)) cs

let ciphertext_bytes grp = 2 * Group.element_bytes grp

let ciphertext_equal a b = Group.elt_equal a.c1 b.c1 && Group.elt_equal a.c2 b.c2
