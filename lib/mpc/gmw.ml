module Bitvec = Dstress_util.Bitvec
module Prg = Dstress_crypto.Prg
module Xfer = Dstress_crypto.Xfer
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit

(* Attached offline material and a cursor counting evaluations already
   served from it. The cursor also advances on inline evaluations of the
   matching circuit, so entry [k] always corresponds to evaluation [k]. *)
type preload = { mat : Triple.material; mutable next : int }

type session = {
  mode : Ot_ext.mode;
  grp : Dstress_crypto.Group.t;
  n : int;
  prgs : Prg.t array; (* per-party local randomness *)
  ot : Ot_ext.session option array array; (* [sender][receiver], lazy *)
  traffic : Traffic.t;
  mutable rounds : int;
  mutable and_gates : int;
  mutable ots : int;
  mutable pre : preload option;
}

let create_session ?(mode = Ot_ext.Crypto) grp ~parties ~seed =
  if parties < 2 then invalid_arg "Gmw.create_session: parties < 2";
  let prgs =
    Array.init parties (fun p -> Prg.of_string (Printf.sprintf "gmw:%s:party:%d" seed p))
  in
  {
    mode;
    grp;
    n = parties;
    prgs;
    ot = Array.make_matrix parties parties None;
    traffic = Traffic.create parties;
    rounds = 0;
    and_gates = 0;
    ots = 0;
    pre = None;
  }

let parties s = s.n

(* Fold a pairwise transfer account (a = sender, b = receiver) into the
   traffic matrix. Each exchange uses a fresh account, so attribution is
   exact — nothing is reset in place. *)
let drain_xfer s xfer ~sender ~receiver =
  Traffic.add s.traffic ~src:sender ~dst:receiver (Xfer.a_to_b xfer);
  Traffic.add s.traffic ~src:receiver ~dst:sender (Xfer.b_to_a xfer)

let ot_session s ~sender ~receiver =
  match s.ot.(sender).(receiver) with
  | Some session -> session
  | None ->
      let xfer = Xfer.create () in
      let session =
        Ot_ext.setup ~mode:s.mode s.grp xfer ~sender_prg:s.prgs.(sender)
          ~receiver_prg:s.prgs.(receiver)
      in
      drain_xfer s xfer ~sender ~receiver;
      s.ot.(sender).(receiver) <- Some session;
      session

let share_input s v = Sharing.share s.prgs.(0) ~parties:s.n v

(* One communication round: evaluate the batch of AND gates [pending]
   (wire indices) given per-party wire values [vals]. For the cross term
   x_p * y_q of ordered pair (p, q), sender p masks with a fresh random
   bit a and offers (a, a XOR x_p); receiver q selects with y_q and adds
   the result to its share. *)
(* Draw [m] mask bits from [prg] as one bulk byte draw — the same byte
   stream, hence the same bits, as [m] successive [Prg.bool] calls. *)
let draw_mask_bytes prg m = Prg.bytes prg m

let and_round s vals pending xs ys =
  let m = Array.length pending in
  (* Local terms x_p * y_p. *)
  for p = 0 to s.n - 1 do
    Array.iteri (fun idx w -> vals.(p).(w) <- xs.(p).(idx) && ys.(p).(idx)) pending
  done;
  for sender = 0 to s.n - 1 do
    for receiver = 0 to s.n - 1 do
      if sender <> receiver then begin
        let session = ot_session s ~sender ~receiver in
        let raw = draw_mask_bytes s.prgs.(sender) m in
        let masks = Array.init m (fun idx -> Char.code (Bytes.get raw idx) land 1 = 1) in
        let pairs = Array.init m (fun idx -> (masks.(idx), masks.(idx) <> xs.(sender).(idx))) in
        let choices = Array.init m (fun idx -> ys.(receiver).(idx)) in
        let xfer = Xfer.create () in
        let outs = Ot_ext.extend_bits session xfer ~pairs ~choices in
        drain_xfer s xfer ~sender ~receiver;
        Array.iteri
          (fun idx w ->
            vals.(sender).(w) <- vals.(sender).(w) <> masks.(idx);
            vals.(receiver).(w) <- vals.(receiver).(w) <> outs.(idx))
          pending;
        s.ots <- s.ots + m
      end
    done
  done;
  s.and_gates <- s.and_gates + m;
  s.rounds <- s.rounds + 1

(* ------------------------------------------------------------------ *)
(* Offline phase: generate / attach / consume correlated randomness     *)
(* ------------------------------------------------------------------ *)

(* Replay, on a fresh throwaway session with the same seed, exactly the
   randomness the online evaluator consumes for [evals] evaluations of
   [plan]: per evaluation, per AND level, per ordered pair — the lazy OT
   setup (first evaluation only) followed by the sender's bulk mask draw.
   Per-party PRG states are snapshotted after each evaluation so the
   consumer can restore them and stay stream-exact. *)
let generate_material ?mode grp ~parties ~seed ~slice_width ~evals plan =
  if evals < 0 then invalid_arg "Gmw.generate_material: evals < 0";
  let s = create_session ?mode grp ~parties ~seed in
  let levels = Plan.levels plan in
  let eval_mats =
    Array.init evals (fun _ ->
        let masks =
          Array.map
            (fun (lv : Plan.level) ->
              let m = Array.length lv.Plan.and_dst in
              let level_masks = Array.make (parties * parties) Bytes.empty in
              for sender = 0 to parties - 1 do
                for receiver = 0 to parties - 1 do
                  if sender <> receiver then begin
                    ignore (ot_session s ~sender ~receiver);
                    level_masks.((sender * parties) + receiver) <-
                      draw_mask_bytes s.prgs.(sender) m
                  end
                done
              done;
              level_masks)
            levels
        in
        { Triple.masks; post_prgs = Array.map Prg.copy s.prgs })
  in
  {
    Triple.digest = Plan.digest plan;
    parties;
    seed;
    slice_width;
    ot_mode = s.mode;
    evals = eval_mats;
    ot = s.ot;
    setup_traffic = s.traffic;
  }

let attach_material s (mat : Triple.material) =
  if s.rounds <> 0 || s.ots <> 0 then
    invalid_arg "Gmw.attach_material: session has already evaluated";
  Array.iter
    (Array.iter (fun o ->
         if Option.is_some o then
           invalid_arg "Gmw.attach_material: OT sessions already established"))
    s.ot;
  if mat.Triple.parties <> s.n then invalid_arg "Gmw.attach_material: party count mismatch";
  if mat.Triple.ot_mode <> s.mode then invalid_arg "Gmw.attach_material: OT mode mismatch";
  for i = 0 to s.n - 1 do
    for j = 0 to s.n - 1 do
      s.ot.(i).(j) <- Option.map Ot_ext.copy_session mat.Triple.ot.(i).(j)
    done
  done;
  (* Inline, base-OT setup traffic is charged lazily during the first
     evaluation; nothing reads the matrix between attach and then, so
     charging it here is observationally the same. *)
  Traffic.merge_into ~dst:s.traffic mat.Triple.setup_traffic;
  s.pre <- Some { mat; next = 0 }

let material_remaining s =
  match s.pre with
  | None -> 0
  | Some c -> max 0 (Array.length c.mat.Triple.evals - c.next)

(* Claim this evaluation's slot in the attached material. Returns the
   pre-drawn entry when one is left; on a digest mismatch the material is
   dropped entirely (its PRG snapshots assume the session evaluates only
   the matching circuit); once exhausted the cursor keeps advancing and
   evaluation falls back to inline draws — correct automatically, because
   the restored snapshots equal the pure-inline PRG states. *)
let take_pre s plan =
  match s.pre with
  | None -> None
  | Some c ->
      if not (String.equal c.mat.Triple.digest (Plan.digest plan)) then begin
        s.pre <- None;
        None
      end
      else begin
        let i = c.next in
        c.next <- i + 1;
        if i < Array.length c.mat.Triple.evals then Some c.mat.Triple.evals.(i) else None
      end

let restore_post s (e : Triple.eval) =
  Array.iteri (fun p prg -> s.prgs.(p) <- Prg.copy prg) e.Triple.post_prgs

(* Online counterpart of [and_round], fed from pre-drawn masks: no PRG or
   OT invocation, yet observably identical — the IKNP receiver always
   obtains exactly its chosen message, i.e. [mask xor (x_s land y_r)], and
   the per-pair traffic below is [extend_bits]'s byte formula. *)
let and_round_consume s vals pending xs ys level_masks =
  let m = Array.length pending in
  for p = 0 to s.n - 1 do
    Array.iteri (fun idx w -> vals.(p).(w) <- xs.(p).(idx) && ys.(p).(idx)) pending
  done;
  let col = Ot_ext.kappa * ((m + 7) / 8) and row = 2 * ((m + 7) / 8) in
  for sender = 0 to s.n - 1 do
    for receiver = 0 to s.n - 1 do
      if sender <> receiver then begin
        let raw = level_masks.((sender * s.n) + receiver) in
        Traffic.add s.traffic ~src:receiver ~dst:sender col;
        Traffic.add s.traffic ~src:sender ~dst:receiver row;
        Array.iteri
          (fun idx w ->
            let mask = Char.code (Bytes.get raw idx) land 1 = 1 in
            let out = mask <> (xs.(sender).(idx) && ys.(receiver).(idx)) in
            vals.(sender).(w) <- vals.(sender).(w) <> mask;
            vals.(receiver).(w) <- vals.(receiver).(w) <> out)
          pending;
        s.ots <- s.ots + m
      end
    done
  done;
  s.and_gates <- s.and_gates + m;
  s.rounds <- s.rounds + 1

(* The evaluator replays a compiled plan ({!Plan}): local gates between
   AND rounds are precomputed op lists, each AND level is one batched
   communication round. The batches are identical (order and content) to
   the ones the historical sweep-based evaluator formed, so PRG draws,
   OT-session setup order, traffic and counters are unchanged. *)
let eval s circuit ~input_shares =
  if Array.length input_shares <> s.n then
    invalid_arg "Gmw.eval: need one input share vector per party";
  Array.iter
    (fun v ->
      if Bitvec.length v <> circuit.Circuit.num_inputs then
        invalid_arg "Gmw.eval: input share length mismatch")
    input_shares;
  let plan = Plan.of_circuit circuit in
  let pre = take_pre s plan in
  let vals = Array.init s.n (fun _ -> Array.make (Plan.num_wires plan) false) in
  let apply op =
    match op with
    | Plan.Load_input { dst; input } ->
        for p = 0 to s.n - 1 do
          vals.(p).(dst) <- Bitvec.unsafe_get input_shares.(p) input
        done
    | Plan.Load_const { dst; value } ->
        (* Party 0 carries the public constant; other shares stay 0. *)
        vals.(0).(dst) <- value
    | Plan.Local_not { dst; src } ->
        vals.(0).(dst) <- not vals.(0).(src);
        for p = 1 to s.n - 1 do
          vals.(p).(dst) <- vals.(p).(src)
        done
    | Plan.Local_xor { dst; a; b } ->
        for p = 0 to s.n - 1 do
          vals.(p).(dst) <- vals.(p).(a) <> vals.(p).(b)
        done
  in
  Array.iter apply (Plan.prologue plan);
  Array.iteri
    (fun li (lv : Plan.level) ->
      let pick ws = Array.init s.n (fun p -> Array.map (fun w -> vals.(p).(w)) ws) in
      let xs = pick lv.Plan.and_a and ys = pick lv.Plan.and_b in
      (match pre with
      | Some e -> and_round_consume s vals lv.Plan.and_dst xs ys e.Triple.masks.(li)
      | None -> and_round s vals lv.Plan.and_dst xs ys);
      Array.iter apply lv.Plan.post)
    (Plan.levels plan);
  (match pre with Some e -> restore_post s e | None -> ());
  Array.init s.n (fun p ->
      Bitvec.init (Array.length circuit.Circuit.outputs) (fun o ->
          vals.(p).(circuit.Circuit.outputs.(o))))

(* ------------------------------------------------------------------ *)
(* Bitsliced evaluation                                                 *)
(* ------------------------------------------------------------------ *)

(* Evaluate up to 64 sessions in lockstep over one compiled plan. Wire
   values are int64 words: bit [sl] of every word belongs to instance
   [sl], so local gates cost one word op for all instances, and each AND
   level issues a single word-level OT batch per ordered pair instead of
   [slots] scalar ones. Everything observable per instance replays the
   scalar path exactly:
   - mask bits come from the same per-session sender PRG bytes, drawn in
     the same order (level, then receiver, then gate);
   - each instance's OT pair session is set up lazily on first use,
     consuming the same PRG bytes and charging the same base-OT traffic;
   - extension traffic is charged per instance with the scalar formula
     (kappa * ceil(m/8) receiver->sender, 2 * ceil(m/8) sender->receiver
     per pair and level), not as a 1/slots share of the batched transfer —
     the "accounting split" that keeps traffic matrices bit-identical;
   - rounds/AND/OT counters advance per instance as in [and_round].
   The word-level batch itself runs on slot 0's pair session; its honest
   batch meter is discarded in favour of the per-instance split. *)
let eval_sliced plan sessions input_shares =
  let slots = Array.length sessions in
  let s0 = sessions.(0) in
  let n = s0.n in
  (* Per-slot offline material: a consuming slot takes its mask bytes from
     the pre-drawn entry instead of its PRG (and needs no lazy OT setup —
     attach installed the sessions); the word-level carrier batch already
     computes every lane as the ideal chosen message, so mixed consume /
     inline slots coexist in one batch. *)
  let pres = Array.map (fun s -> take_pre s plan) sessions in
  (* When every slot consumes, the word-level OT batch can be skipped
     outright: the carrier's extension computes exactly the ideal chosen
     message mask XOR (x_s AND y_r) per lane, which is local arithmetic
     here, and a colgen stream nobody draws from is unobservable. *)
  let all_consume = Array.for_all Option.is_some pres in
  let slot_mask = if slots = 64 then -1L else Int64.sub (Int64.shift_left 1L slots) 1L in
  let vals = Array.init n (fun _ -> Array.make (Plan.num_wires plan) 0L) in
  let apply op =
    match op with
    | Plan.Load_input { dst; input } ->
        for p = 0 to n - 1 do
          let w = ref 0L in
          for sl = slots - 1 downto 0 do
            w :=
              Int64.logor (Int64.shift_left !w 1)
                (if Bitvec.unsafe_get input_shares.(sl).(p) input then 1L else 0L)
          done;
          vals.(p).(dst) <- !w
        done
    | Plan.Load_const { dst; value } -> vals.(0).(dst) <- (if value then slot_mask else 0L)
    | Plan.Local_not { dst; src } ->
        vals.(0).(dst) <- Int64.logxor vals.(0).(src) slot_mask;
        for p = 1 to n - 1 do
          vals.(p).(dst) <- vals.(p).(src)
        done
    | Plan.Local_xor { dst; a; b } ->
        for p = 0 to n - 1 do
          vals.(p).(dst) <- Int64.logxor vals.(p).(a) vals.(p).(b)
        done
  in
  Array.iter apply (Plan.prologue plan);
  Array.iteri
    (fun li (lv : Plan.level) ->
      let dst = lv.Plan.and_dst and wa = lv.Plan.and_a and wb = lv.Plan.and_b in
      let m = Array.length dst in
      (* Local terms x_p * y_p, all slots at once. *)
      for p = 0 to n - 1 do
        let vp = vals.(p) in
        for g = 0 to m - 1 do
          vp.(dst.(g)) <- Int64.logand vp.(wa.(g)) vp.(wb.(g))
        done
      done;
      let masks = Array.make m 0L in
      for sender = 0 to n - 1 do
        for receiver = 0 to n - 1 do
          if sender <> receiver then begin
            Array.fill masks 0 m 0L;
            for sl = 0 to slots - 1 do
              let s = sessions.(sl) in
              let raw =
                match pres.(sl) with
                | Some e -> e.Triple.masks.(li).((sender * n) + receiver)
                | None ->
                    ignore (ot_session s ~sender ~receiver);
                    draw_mask_bytes s.prgs.(sender) m
              in
              let bit = Int64.shift_left 1L sl in
              for g = 0 to m - 1 do
                if Char.code (Bytes.get raw g) land 1 = 1 then
                  masks.(g) <- Int64.logor masks.(g) bit
              done
            done;
            let vs = vals.(sender) and vr = vals.(receiver) in
            let outs =
              if all_consume then
                Array.init m (fun g ->
                    Int64.logxor masks.(g) (Int64.logand vs.(wa.(g)) vr.(wb.(g))))
              else begin
                let pairs =
                  Array.init m (fun g -> (masks.(g), Int64.logxor masks.(g) vs.(wa.(g))))
                in
                let choices = Array.init m (fun g -> vr.(wb.(g))) in
                let carrier = ot_session s0 ~sender ~receiver in
                (* The bulk transfer is re-attributed per slot below, so
                   the carrier's own account is a discarded scratch. *)
                Ot_ext.extend_words carrier (Xfer.create ()) ~width:slots ~pairs ~choices
              end
            in
            for g = 0 to m - 1 do
              let w = dst.(g) in
              vs.(w) <- Int64.logxor vs.(w) masks.(g);
              vr.(w) <- Int64.logxor vr.(w) outs.(g)
            done;
            let col = Ot_ext.kappa * ((m + 7) / 8) and row = 2 * ((m + 7) / 8) in
            for sl = 0 to slots - 1 do
              let s = sessions.(sl) in
              Traffic.add s.traffic ~src:receiver ~dst:sender col;
              Traffic.add s.traffic ~src:sender ~dst:receiver row;
              s.ots <- s.ots + m
            done
          end
        done
      done;
      for sl = 0 to slots - 1 do
        let s = sessions.(sl) in
        s.and_gates <- s.and_gates + m;
        s.rounds <- s.rounds + 1
      done;
      Array.iter apply lv.Plan.post)
    (Plan.levels plan);
  Array.iteri
    (fun sl pre -> match pre with Some e -> restore_post sessions.(sl) e | None -> ())
    pres;
  let outputs = (Plan.circuit plan).Circuit.outputs in
  Array.init slots (fun sl ->
      Array.init n (fun p ->
          Bitvec.init (Array.length outputs) (fun o ->
              Int64.logand (Int64.shift_right_logical vals.(p).(outputs.(o)) sl) 1L = 1L)))

let eval_many sessions circuit ~input_shares =
  let count = Array.length sessions in
  if Array.length input_shares <> count then
    invalid_arg "Gmw.eval_many: need one input-share set per session";
  if count = 0 then [||]
  else begin
    let n = sessions.(0).n and mode = sessions.(0).mode in
    Array.iter
      (fun s ->
        if s.n <> n || s.mode <> mode then
          invalid_arg "Gmw.eval_many: sessions must agree on party count and OT mode")
      sessions;
    Array.iter
      (fun shares ->
        if Array.length shares <> n then
          invalid_arg "Gmw.eval: need one input share vector per party";
        Array.iter
          (fun v ->
            if Bitvec.length v <> circuit.Circuit.num_inputs then
              invalid_arg "Gmw.eval: input share length mismatch")
          shares)
      input_shares;
    let plan = Plan.of_circuit circuit in
    let out = Array.make count [||] in
    let pos = ref 0 in
    while !pos < count do
      let slots = min 64 (count - !pos) in
      let chunk =
        eval_sliced plan (Array.sub sessions !pos slots) (Array.sub input_shares !pos slots)
      in
      Array.blit chunk 0 out !pos slots;
      pos := !pos + slots
    done;
    out
  end

let reveal s shares =
  let bits = Bitvec.length shares.(0) in
  let bytes = (bits + 7) / 8 in
  (* All-to-all broadcast of shares. *)
  for src = 0 to s.n - 1 do
    for dst = 0 to s.n - 1 do
      if src <> dst then Traffic.add s.traffic ~src ~dst bytes
    done
  done;
  Sharing.reconstruct shares

let observe s obs =
  let module Obs = Dstress_obs.Obs in
  Obs.incr obs "mpc.sessions";
  Obs.incr obs ~by:s.rounds "mpc.rounds";
  Obs.incr obs ~by:s.and_gates "mpc.and_gates";
  Obs.incr obs ~by:s.ots "mpc.ots"

let traffic s = s.traffic

let reset_traffic s = Traffic.clear s.traffic

let rounds s = s.rounds
let and_gates_evaluated s = s.and_gates
let ots_performed s = s.ots
