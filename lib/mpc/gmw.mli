(** GMW n-party secure computation over boolean circuits
    (Goldreich–Micali–Wigderson, STOC'87) — the MPC engine DStress uses for
    every vertex computation step, the aggregation step and the noising
    step.

    Wires carry XOR shares: each of the [k+1] parties holds one bit per
    wire and the cleartext value is the XOR of all of them.
    - XOR and NOT gates are evaluated locally (free);
    - AND gates use one 1-out-of-2 oblivious transfer per *ordered* party
      pair, batched per circuit AND-level and served by the IKNP extension
      ({!Dstress_crypto.Ot_ext}), so the number of communication rounds per
      circuit equals its AND depth.

    All parties are simulated in-process; every byte that would cross the
    wire is recorded in a {!Traffic} matrix, and the cumulative counters
    ({!rounds}, {!and_gates_evaluated}, {!ots_performed}) feed the cost
    model that reproduces the paper's scalability projections. *)

type session

val create_session :
  ?mode:Dstress_crypto.Ot_ext.mode ->
  Dstress_crypto.Group.t ->
  parties:int ->
  seed:string ->
  session
(** [create_session grp ~parties ~seed] prepares per-party randomness.
    OT-extension sessions between party pairs are established lazily on
    first use (and their base-OT traffic is charged at that point).
    Default mode is [Crypto]; [Simulation] swaps in the fast OT back end
    (see {!Dstress_crypto.Ot_ext}). Raises [Invalid_argument] if
    [parties < 2]. *)

val parties : session -> int

val share_input : session -> Dstress_util.Bitvec.t -> Dstress_util.Bitvec.t array
(** Split a cleartext input vector into per-party XOR shares using the
    session's dealer randomness (test/benchmark convenience — in DStress
    proper, inputs arrive already shared). *)

val eval :
  session ->
  Dstress_circuit.Circuit.t ->
  input_shares:Dstress_util.Bitvec.t array ->
  Dstress_util.Bitvec.t array
(** [eval s c ~input_shares] runs the protocol. [input_shares] has one
    vector of length [c.num_inputs] per party; the result has one vector of
    length [Array.length c.outputs] per party, XOR-sharing the outputs
    (outputs are *not* revealed — DStress keeps them shared, §3.6).
    Raises [Invalid_argument] on shape mismatches. *)

val eval_many :
  session array ->
  Dstress_circuit.Circuit.t ->
  input_shares:Dstress_util.Bitvec.t array array ->
  Dstress_util.Bitvec.t array array
(** Bitsliced evaluation of the same circuit across many independent
    sessions (protocol instances): [eval_many sessions c ~input_shares]
    is observably identical to
    [Array.mapi (fun i s -> eval s c ~input_shares:input_shares.(i)) sessions]
    — same output shares, same per-session traffic matrices, same
    rounds/AND/OT counters, same PRG states afterwards — but packs up to
    64 instances into each [int64] wire word, so local gates cost one
    word op and each AND level runs one word-level OT batch per ordered
    pair ({!Dstress_crypto.Ot_ext.extend_words}) instead of one scalar
    batch per instance. Instances beyond 64 are processed in successive
    chunks. All sessions must agree on party count and OT mode.
    Raises [Invalid_argument] on shape mismatches. *)

val generate_material :
  ?mode:Dstress_crypto.Ot_ext.mode ->
  Dstress_crypto.Group.t ->
  parties:int ->
  seed:string ->
  slice_width:int ->
  evals:int ->
  Plan.t ->
  Triple.material
(** Offline phase: pre-draw, on a throwaway session created exactly like
    [create_session ?mode grp ~parties ~seed], all the correlated
    randomness that [evals] evaluations of the plan's circuit will
    consume — the lazy per-pair OT-extension setup and every Beaver-style
    mask bit, in the online draw order — plus per-party PRG snapshots
    after each evaluation. The result is input-independent and can be
    cached ({!Triple.Cache}), shipped across processes, and attached to
    any number of fresh sessions. *)

val attach_material : session -> Triple.material -> unit
(** [attach_material s mat] installs offline material into a fresh
    session: deep-copies of the pre-set-up OT sessions, the base-OT setup
    traffic (charged here instead of lazily during the first evaluation —
    indistinguishable to any caller that reads traffic after an
    evaluation), and the mask store. Subsequent {!eval}/{!eval_many}
    calls on the matching circuit consume one pre-drawn entry each and
    skip every online PRG and OT invocation, remaining bit-identical —
    output shares, traffic, counters, PRG states — to inline generation;
    once the material is exhausted, evaluation falls back to inline draws
    and continuity of the PRG streams keeps the equivalence exact.
    Evaluating a {e different} circuit drops the material (the snapshots
    would no longer line up) and continues inline.

    The session must be fresh — same [parties], [seed]-compatible PRG
    states (unevaluated), same OT [mode], no established OT sessions.
    Raises [Invalid_argument] otherwise. *)

val material_remaining : session -> int
(** Pre-drawn evaluations not yet consumed (0 when none attached). *)

val reveal : session -> Dstress_util.Bitvec.t array -> Dstress_util.Bitvec.t
(** Open shared values by all-to-all broadcast of shares (metered). *)

val observe : session -> Dstress_obs.Obs.t -> unit
(** Fold the session's cumulative counters into a metrics registry:
    increments [mpc.sessions] by one and [mpc.rounds], [mpc.and_gates],
    [mpc.ots] by the session totals. The engine calls this once per
    session at the end of a run, in a fixed session order, so the registry
    is deterministic. *)

val traffic : session -> Traffic.t
(** Cumulative traffic matrix (live reference; use {!reset_traffic} to
    start a fresh measurement window). *)

val reset_traffic : session -> unit

val rounds : session -> int
(** Cumulative AND rounds across all [eval] calls. *)

val and_gates_evaluated : session -> int
val ots_performed : session -> int
