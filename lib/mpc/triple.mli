(** Correlated randomness for the GMW offline/online split.

    Every bit of randomness a GMW evaluation consumes — base-OT setup
    bytes and the Beaver-style mask bit each ordered party pair draws per
    AND gate — is a deterministic function of the session seed and the
    circuit's AND-level structure, and none of it depends on the inputs.
    The offline phase therefore replays those draws ahead of time
    ({!Gmw.generate_material}) and stores the results here; the online
    phase consumes them ({!Gmw.attach_material}) and skips every PRG and
    hash invocation on the critical path while remaining bit-identical —
    same output shares, same traffic matrices, same rounds/AND/OT
    counters, same per-party PRG states — to a session that generated
    inline.

    Material is cached in memory (process-wide, thread-safe) and
    optionally on disk, so daemon restarts and distributed workers reuse
    it across runs. *)

type eval = {
  masks : bytes array array;
      (** [masks.(level).(sender * parties + receiver)] holds one byte per
          AND gate of that level, drawn from the sender's party PRG in the
          online draw order; bit 0 of each byte is the mask bit. Diagonal
          entries are empty. *)
  post_prgs : Dstress_crypto.Prg.t array;
      (** Per-party PRG snapshots as they stand after this evaluation —
          restored on consumption so later inline draws continue the
          stream exactly. *)
}
(** Pre-drawn randomness for one full circuit evaluation. *)

type material = {
  digest : string;  (** {!Plan.digest} of the circuit it was drawn for. *)
  parties : int;
  seed : string;  (** Session seed the draws were replayed from. *)
  slice_width : int;
      (** Administrative record of the intended evaluation width (1 for
          scalar, up to 64 for bitsliced); scalar and sliced evaluation
          consume identical draw sequences, so it does not affect the
          bytes, only the cache key. *)
  ot_mode : Dstress_crypto.Ot_ext.mode;
  evals : eval array;
  ot : Dstress_crypto.Ot_ext.session option array array;
      (** Post-setup OT-extension sessions, [.(sender).(receiver)];
          deep-copied on attach so one cached value serves many
          sessions. *)
  setup_traffic : Traffic.t;
      (** Base-OT setup traffic, charged to the online session at attach
          time (inline it would be charged lazily during the first
          evaluation — indistinguishable to any observer that reads
          traffic after an evaluation). *)
}
(** The full offline product for one (circuit, parties, seed, mode) key.
    Plain data — safe to [Marshal] across process boundaries. *)

val evals_available : material -> int

val key :
  digest:string ->
  parties:int ->
  seed:string ->
  slice_width:int ->
  mode:Dstress_crypto.Ot_ext.mode ->
  string
(** Canonical cache-key string for a material request. *)

module Cache : sig
  type t

  val create : unit -> t

  val shared : t
  (** Process-wide instance used by the runtime engine. *)

  val find_or_generate :
    ?dir:string ->
    t ->
    digest:string ->
    parties:int ->
    seed:string ->
    slice_width:int ->
    mode:Dstress_crypto.Ot_ext.mode ->
    evals:int ->
    generate:(evals:int -> material) ->
    material
  (** Memory hit, else disk hit (when [dir] is given), else [generate] —
      in that order. The returned material has at least [evals]
      evaluations. The internal mutex is held across [generate], so
      concurrent requests for one key trigger exactly one generation.
      Freshly generated material is persisted to [dir] (created if
      missing); disk files failing the magic/CRC/field checks are
      silently regenerated. *)

  val generations : t -> int
  (** How many times [generate] ran (cache-miss count). *)

  val disk_loads : t -> int
  val hits : t -> int

  val clear : t -> unit
  (** Drop all entries and reset counters (tests). Does not touch disk. *)
end
