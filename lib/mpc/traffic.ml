type t = {
  n : int;
  bytes : int array; (* row-major [src * n + dst] *)
  external_in : int array; (* bytes sent to each party from outside the party set *)
}

let create n =
  if n < 1 then invalid_arg "Traffic.create: n < 1";
  { n; bytes = Array.make (n * n) 0; external_in = Array.make n 0 }

let parties t = t.n

let add t ~src ~dst amount =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Traffic.add: party out of range";
  if amount < 0 then invalid_arg "Traffic.add: negative bytes";
  let i = (src * t.n) + dst in
  t.bytes.(i) <- t.bytes.(i) + amount

let add_external t ~dst amount =
  if dst < 0 || dst >= t.n then invalid_arg "Traffic.add_external: party out of range";
  if amount < 0 then invalid_arg "Traffic.add_external: negative bytes";
  t.external_in.(dst) <- t.external_in.(dst) + amount

let external_to t p =
  if p < 0 || p >= t.n then invalid_arg "Traffic.external_to: party out of range";
  t.external_in.(p)

let external_total t = Array.fold_left ( + ) 0 t.external_in

let sent_by t p =
  let acc = ref 0 in
  for dst = 0 to t.n - 1 do
    acc := !acc + t.bytes.((p * t.n) + dst)
  done;
  !acc

let received_by t p =
  let acc = ref t.external_in.(p) in
  for src = 0 to t.n - 1 do
    acc := !acc + t.bytes.((src * t.n) + p)
  done;
  !acc

let by_node t p = sent_by t p + received_by t p

let total t = Array.fold_left ( + ) 0 t.bytes + external_total t

let max_per_node t =
  let best = ref 0 in
  for p = 0 to t.n - 1 do
    if by_node t p > !best then best := by_node t p
  done;
  !best

let mean_per_node t =
  let acc = ref 0 in
  for p = 0 to t.n - 1 do
    acc := !acc + by_node t p
  done;
  float_of_int !acc /. float_of_int t.n

let equal a b = a.n = b.n && a.bytes = b.bytes && a.external_in = b.external_in

let merge_into ~dst src =
  if dst.n <> src.n then invalid_arg "Traffic.merge_into: size mismatch";
  Array.iteri (fun i v -> dst.bytes.(i) <- dst.bytes.(i) + v) src.bytes;
  Array.iteri (fun i v -> dst.external_in.(i) <- dst.external_in.(i) + v) src.external_in

let clear t =
  Array.fill t.bytes 0 (Array.length t.bytes) 0;
  Array.fill t.external_in 0 t.n 0

let iter_nonzero t f =
  Array.iteri
    (fun i v -> if v <> 0 then f ~src:(i / t.n) ~dst:(i mod t.n) v)
    t.bytes

let observe ?(prefix = "traffic") t obs =
  let module Obs = Dstress_obs.Obs in
  Obs.incr obs ~by:(total t) (prefix ^ ".bytes");
  Obs.incr obs ~by:(external_total t) (prefix ^ ".external_bytes");
  Obs.set obs (prefix ^ ".max_node_bytes") (float_of_int (max_per_node t));
  Obs.set obs (prefix ^ ".mean_node_bytes") (mean_per_node t);
  if Obs.detailed obs then
    for p = 0 to t.n - 1 do
      Obs.set obs (Printf.sprintf "%s.node.%03d.sent" prefix p) (float_of_int (sent_by t p));
      Obs.set obs
        (Printf.sprintf "%s.node.%03d.received" prefix p)
        (float_of_int (received_by t p))
    done

let pp ppf t =
  Format.fprintf ppf "@[<v>traffic over %d parties: %d B total, max/node %d B@]" t.n
    (total t) (max_per_node t)
