(** Compiled GMW evaluation plans.

    {!Gmw.eval} used to rediscover the circuit's round structure at every
    call: sweep the gate array, evaluate whatever local gates are ready,
    collect the ready AND gates into a batch, repeat — an
    O(AND-depth × gates) walk with per-round list and closure churn, paid
    once per vertex per round. A plan performs that scheduling exactly
    once per circuit: gates are partitioned into the circuit's AND-levels
    ({!Dstress_circuit.Circuit.and_levels}) with operand and destination
    wire indices precomputed, and the evaluator — scalar or bitsliced —
    just replays the levels.

    The AND batch of level [r] contains exactly the AND gates at level
    [r+1] of [and_levels], in wire order — the same batches (same order,
    same sizes) the sweep produced, which is what keeps PRG draws, OT
    counts and metered traffic bit-identical to the historical evaluator.

    Plans are memoized per circuit (physical identity, bounded cache,
    thread-safe), so concurrent evaluations of the same circuit from a
    domain pool compile it once. *)

type op =
  | Load_input of { dst : int; input : int }
      (** wire [dst] := input bit [input] (every party loads its share). *)
  | Load_const of { dst : int; value : bool }
      (** wire [dst] := [value] — party 0's share is [value], others 0. *)
  | Local_not of { dst : int; src : int }
      (** wire [dst] := ¬[src] — party 0 flips its share, others copy. *)
  | Local_xor of { dst : int; a : int; b : int }
      (** wire [dst] := [a] ⊕ [b], shares XOR locally. *)

type level = {
  and_dst : int array;
  and_a : int array;
  and_b : int array;
  post : op array;
}
(** One AND round: the batch of AND gates evaluated together (parallel
    arrays of destination/left/right wires) followed by the local gates
    that become computable once the batch lands. *)

type t

val of_circuit : Dstress_circuit.Circuit.t -> t
(** Memoized compilation (keyed on the circuit's physical identity). *)

val compile : Dstress_circuit.Circuit.t -> t
(** Uncached compilation; exposed for tests. *)

val circuit : t -> Dstress_circuit.Circuit.t
val num_wires : t -> int

val depth : t -> int
(** Number of AND rounds ( = [Circuit.and_depth]). *)

val and_count : t -> int
(** Total AND gates across all levels ( = [Circuit.and_count]). *)

val prologue : t -> op array
val levels : t -> level array

val digest : t -> string
(** Structural hash (hex SHA-256) of the plan's circuit — gate list,
    input count and output wires. Unlike physical identity, it survives
    Marshal round-trips, so preprocessed GMW material generated on one
    side of a process boundary still matches the plan on the other. Two
    structurally equal circuits share a digest. *)

val compilations : unit -> int
(** Process-wide count of {!compile} runs (including those triggered by
    {!of_circuit} misses) — lets tests assert that memoization served a
    repeated circuit without recompiling. *)
