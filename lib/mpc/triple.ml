module Prg = Dstress_crypto.Prg
module Ot_ext = Dstress_crypto.Ot_ext
module Sha256 = Dstress_crypto.Sha256
module Crc32 = Dstress_util.Crc32
module Hex = Dstress_util.Hex

type eval = {
  masks : bytes array array; (* .(level).(sender * parties + receiver), one byte per gate *)
  post_prgs : Prg.t array; (* per-party PRG snapshots after this evaluation *)
}

type material = {
  digest : string;
  parties : int;
  seed : string;
  slice_width : int;
  ot_mode : Ot_ext.mode;
  evals : eval array;
  ot : Ot_ext.session option array array;
  setup_traffic : Traffic.t;
}

let evals_available m = Array.length m.evals

let mode_tag = function Ot_ext.Crypto -> "crypto" | Ot_ext.Simulation -> "sim"

let key ~digest ~parties ~seed ~slice_width ~mode =
  Printf.sprintf "%s:%d:%s:%d:%s" digest parties seed slice_width (mode_tag mode)

(* ------------------------------------------------------------------ *)
(* Disk persistence                                                    *)
(* ------------------------------------------------------------------ *)

(* File layout: magic line, 4-byte big-endian payload length, Marshal
   payload, 4-byte big-endian CRC-32 of the payload. Anything that fails
   to parse or verify is treated as a miss and regenerated — a corrupt or
   stale file can cost time, never correctness. *)

let magic = "DSTRESS-TRIPLE/1\n"

let file_of_key dir k =
  Filename.concat dir (Hex.encode (Sha256.digest (Bytes.of_string k)) ^ ".triple")

let rec ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let output_be32 oc v =
  for i = 3 downto 0 do
    output_char oc (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let input_be32 ic =
  let v = ref 0 in
  for _ = 0 to 3 do
    v := (!v lsl 8) lor Char.code (input_char ic)
  done;
  !v

let save dir k mat =
  try
    ensure_dir dir;
    let payload = Marshal.to_bytes mat [] in
    let path = file_of_key dir k in
    (* Write-then-rename so readers never observe a half-written file;
       concurrent writers of the same key race harmlessly (same content,
       and a torn temp file fails the CRC on load). *)
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc magic;
    output_be32 oc (Bytes.length payload);
    output_bytes oc payload;
    output_be32 oc (Int32.to_int (Crc32.digest payload) land 0xffffffff);
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ -> ()

let load dir k ~digest ~parties ~seed ~slice_width ~mode ~evals =
  let path = file_of_key dir k in
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let mg = really_input_string ic (String.length magic) in
          if mg <> magic then None
          else begin
            let len = input_be32 ic in
            if len < 0 || len > in_channel_length ic then None
            else begin
              let payload = Bytes.create len in
              really_input ic payload 0 len;
              let crc = input_be32 ic in
              if crc <> Int32.to_int (Crc32.digest payload) land 0xffffffff then None
              else
                let mat : material = Marshal.from_bytes payload 0 in
                if
                  String.equal mat.digest digest
                  && mat.parties = parties
                  && String.equal mat.seed seed
                  && mat.slice_width = slice_width
                  && mat.ot_mode = mode
                  && Array.length mat.evals >= evals
                then Some mat
                else None
            end
          end)
    with Sys_error _ | End_of_file | Failure _ -> None

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type t = {
    mutex : Mutex.t;
    table : (string, material) Hashtbl.t;
    mutable generations : int;
    mutable disk_loads : int;
    mutable hits : int;
  }

  let create () =
    {
      mutex = Mutex.create ();
      table = Hashtbl.create 16;
      generations = 0;
      disk_loads = 0;
      hits = 0;
    }

  let shared = create ()

  let generations t = Mutex.protect t.mutex (fun () -> t.generations)
  let disk_loads t = Mutex.protect t.mutex (fun () -> t.disk_loads)
  let hits t = Mutex.protect t.mutex (fun () -> t.hits)

  let clear t =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.reset t.table;
        t.generations <- 0;
        t.disk_loads <- 0;
        t.hits <- 0)

  (* The mutex is held across generation on purpose: when a domain pool
     hammers one key, exactly one generation runs and everyone else
     blocks on it and then hits — generating the same material twice
     would be wasted work, not a correctness bug (it is deterministic
     in the key). *)
  let find_or_generate ?dir t ~digest ~parties ~seed ~slice_width ~mode ~evals ~generate =
    let k = key ~digest ~parties ~seed ~slice_width ~mode in
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some mat when Array.length mat.evals >= evals ->
            t.hits <- t.hits + 1;
            mat
        | _ -> (
            let from_disk =
              match dir with
              | None -> None
              | Some d -> load d k ~digest ~parties ~seed ~slice_width ~mode ~evals
            in
            match from_disk with
            | Some mat ->
                t.disk_loads <- t.disk_loads + 1;
                Hashtbl.replace t.table k mat;
                mat
            | None ->
                let mat = generate ~evals in
                t.generations <- t.generations + 1;
                Hashtbl.replace t.table k mat;
                (match dir with None -> () | Some d -> save d k mat);
                mat))
end
