module Circuit = Dstress_circuit.Circuit

(* A compiled evaluation plan: the circuit's gates partitioned into its
   AND-levels, with operand/destination wire indices resolved once. The
   GMW evaluator replays the plan instead of re-sweeping the gate array
   every round, and the order of AND gates inside each level equals their
   wire order — exactly the batches the previous sweep-based evaluator
   produced, so PRG consumption, traffic and counters are unchanged. *)

type op =
  | Load_input of { dst : int; input : int }
  | Load_const of { dst : int; value : bool }
  | Local_not of { dst : int; src : int }
  | Local_xor of { dst : int; a : int; b : int }

type level = {
  and_dst : int array; (* destination wires of this round's AND batch *)
  and_a : int array; (* left operand wire per batch entry *)
  and_b : int array; (* right operand wire per batch entry *)
  post : op array; (* local gates that become ready after the batch *)
}

type t = {
  circuit : Circuit.t;
  prologue : op array; (* local gates computable before any AND round *)
  levels : level array; (* one entry per AND round, in round order *)
  num_wires : int;
  digest : string; (* structural circuit hash, survives Marshal round-trips *)
}

let circuit t = t.circuit
let num_wires t = t.num_wires
let prologue t = t.prologue
let levels t = t.levels
let depth t = Array.length t.levels
let and_count t = Array.fold_left (fun a l -> a + Array.length l.and_dst) 0 t.levels
let digest t = t.digest

(* Structural identity for preprocessed material: physical equality breaks
   whenever a plan crosses a Marshal boundary (the distributed executor
   ships sessions between processes), so cached triples are matched by a
   hash of the circuit's full gate list instead. *)
let circuit_digest (circuit : Circuit.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "in%d;" circuit.Circuit.num_inputs);
  Array.iter
    (fun g ->
      match g with
      | Circuit.Input k -> Buffer.add_string b (Printf.sprintf "i%d;" k)
      | Circuit.Const v -> Buffer.add_string b (if v then "c1;" else "c0;")
      | Circuit.Not a -> Buffer.add_string b (Printf.sprintf "n%d;" a)
      | Circuit.Xor (a, c) -> Buffer.add_string b (Printf.sprintf "x%d,%d;" a c)
      | Circuit.And (a, c) -> Buffer.add_string b (Printf.sprintf "a%d,%d;" a c))
    circuit.Circuit.gates;
  Array.iter (fun o -> Buffer.add_string b (Printf.sprintf "o%d;" o)) circuit.Circuit.outputs;
  Dstress_util.Hex.encode (Dstress_crypto.Sha256.digest (Buffer.to_bytes b))

let compilations_counter = Atomic.make 0
let compilations () = Atomic.get compilations_counter

let compile (circuit : Circuit.t) =
  Atomic.incr compilations_counter;
  let gates = circuit.Circuit.gates in
  let levels = Circuit.and_levels circuit in
  let depth = Circuit.and_depth circuit in
  (* Buckets per level, built back to front with one pass then reversed:
     locals at level l run after the ANDs of round l (they depend on them);
     locals at level 0 run before any round. *)
  let local_rev = Array.make (depth + 1) [] in
  let and_rev = Array.make (depth + 1) [] in
  Array.iteri
    (fun i g ->
      let l = levels.(i) in
      match g with
      | Circuit.Input k -> local_rev.(l) <- Load_input { dst = i; input = k } :: local_rev.(l)
      | Circuit.Const b -> local_rev.(l) <- Load_const { dst = i; value = b } :: local_rev.(l)
      | Circuit.Not a -> local_rev.(l) <- Local_not { dst = i; src = a } :: local_rev.(l)
      | Circuit.Xor (a, b) -> local_rev.(l) <- Local_xor { dst = i; a; b } :: local_rev.(l)
      | Circuit.And (a, b) -> and_rev.(l) <- (i, a, b) :: and_rev.(l))
    gates;
  let prologue = Array.of_list (List.rev local_rev.(0)) in
  let levels =
    Array.init depth (fun r ->
        let ands = Array.of_list (List.rev and_rev.(r + 1)) in
        {
          and_dst = Array.map (fun (i, _, _) -> i) ands;
          and_a = Array.map (fun (_, a, _) -> a) ands;
          and_b = Array.map (fun (_, _, b) -> b) ands;
          post = Array.of_list (List.rev local_rev.(r + 1));
        })
  in
  { circuit; prologue; levels; num_wires = Array.length gates; digest = circuit_digest circuit }

(* Plans are memoized on the physical identity of the circuit: DStress
   evaluates the same update circuit once per vertex per round, and
   circuits are immutable once built. The cache is a short LRU-ish list
   (entries are pushed to the front on a miss and the tail dropped), held
   under a mutex so parallel executor domains can share it. *)
let cache_limit = 32
let cache : (Circuit.t * t) list ref = ref []
let cache_mutex = Mutex.create ()

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let of_circuit circuit =
  Mutex.protect cache_mutex (fun () ->
      match List.find_opt (fun (c, _) -> c == circuit) !cache with
      | Some (_, plan) -> plan
      | None ->
          let plan = compile circuit in
          cache := take cache_limit ((circuit, plan) :: !cache);
          plan)
