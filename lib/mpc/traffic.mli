(** Per-party traffic matrix.

    The evaluation sections of the paper (Figures 4–6) report traffic *per
    node*, so the MPC engine and the transfer protocol record every byte as
    a directed (sender, receiver) entry, from which per-node send/receive
    totals fall out. *)

type t

val create : int -> t
(** [create n] for [n] parties. *)

val parties : t -> int

val add : t -> src:int -> dst:int -> int -> unit
(** Raises [Invalid_argument] on out-of-range parties or negative bytes. *)

val add_external : t -> dst:int -> int -> unit
(** Bytes delivered to [dst] by a sender {e outside} the party set — the
    trusted party's one-time setup download, in DStress. These live on a
    dedicated row (not as a [dst -> dst] self-loop, which would double-count
    in {!by_node}): they appear in {!received_by}, {!by_node} and {!total}
    but never in {!sent_by} or {!iter_nonzero}. Raises [Invalid_argument]
    on an out-of-range party or negative bytes. *)

val external_to : t -> int -> int
(** External bytes recorded for one party by {!add_external}. *)

val external_total : t -> int

val sent_by : t -> int -> int
val received_by : t -> int -> int
(** Includes the party's {!add_external} bytes. *)

val by_node : t -> int -> int
(** Sent plus received. *)

val total : t -> int
(** All bytes on the wire (each byte counted once). *)

val max_per_node : t -> int
val mean_per_node : t -> float

val equal : t -> t -> bool
(** Structural equality of two matrices: same party count, same per-pair
    byte counts and same external rows. Used by the equivalence tests that
    assert the sliced and scalar GMW paths meter identical traffic. *)

val merge_into : dst:t -> t -> unit
(** Accumulates another matrix of the same size. *)

val clear : t -> unit
(** Zeroes every entry. *)

val iter_nonzero : t -> (src:int -> dst:int -> int -> unit) -> unit
(** Visit every nonzero directed entry of the party-to-party matrix.
    External bytes ({!add_external}) are not visited — read them with
    {!external_to}. *)

val observe : ?prefix:string -> t -> Dstress_obs.Obs.t -> unit
(** Publish the matrix into a metrics registry under [prefix] (default
    ["traffic"]): total and external byte counters plus max/mean per-node
    gauges, and — at {!Dstress_obs.Obs.Full} — per-node sent/received
    gauges ([<prefix>.node.%03d.sent/.received]). This is the phase-attributed
    replacement for reading the matrix fields by hand. *)

val pp : Format.formatter -> t -> unit
