module Prng = Dstress_util.Prng

type kind = Crash | Drop | Delay | Corrupt | Decrypt_miss | Disconnect | Stall | Partition

let kind_name = function
  | Crash -> "crash"
  | Drop -> "drop"
  | Delay -> "delay"
  | Corrupt -> "corrupt"
  | Decrypt_miss -> "decrypt-miss"
  | Disconnect -> "disconnect"
  | Stall -> "stall"
  | Partition -> "partition"

let all_kinds = [ Crash; Drop; Delay; Corrupt; Decrypt_miss; Disconnect; Stall; Partition ]

let is_wire = function
  | Disconnect | Stall | Partition -> true
  | Crash | Drop | Delay | Corrupt | Decrypt_miss -> false

(* The one simulated-time rounding rule: float seconds are charged to the
   tick timeline by truncation toward zero. The engine's recovery
   accounting and the transport's stall bookkeeping both call this, so
   the two layers can never disagree about a delay's tick cost. *)
let ticks_per_second = 1_000_000.0

let delay_ticks s = int_of_float (s *. ticks_per_second)

type fault =
  | Crash_node of { node : int; from_round : int; until_round : int }
  | Drop_transfer of { src : int; dst : int; round : int }
  | Delay_transfer of { src : int; dst : int; round : int; seconds : float }
  | Corrupt_transfer of { src : int; dst : int; round : int }
  | Miss_decrypt of { src : int; dst : int; round : int }
  | Disconnect_worker of { worker : int; batch : int }
  | Stall_worker of { worker : int; batch : int; seconds : float }
  | Partition_worker of { worker : int; from_batch : int; until_batch : int }

let kind_of = function
  | Crash_node _ -> Crash
  | Drop_transfer _ -> Drop
  | Delay_transfer _ -> Delay
  | Corrupt_transfer _ -> Corrupt
  | Miss_decrypt _ -> Decrypt_miss
  | Disconnect_worker _ -> Disconnect
  | Stall_worker _ -> Stall
  | Partition_worker _ -> Partition

type plan = fault list

let empty = []

type rates = { crash : float; drop : float; delay : float; corrupt : float; miss : float }

let no_faults = { crash = 0.0; drop = 0.0; delay = 0.0; corrupt = 0.0; miss = 0.0 }

let check_rate name r =
  if not (r >= 0.0 && r <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.random_plan: %s rate %g outside [0, 1]" name r)

let random_plan ~seed ~rounds ~nodes ~edges rates =
  if rounds < 1 then invalid_arg "Fault.random_plan: rounds < 1";
  check_rate "crash" rates.crash;
  check_rate "drop" rates.drop;
  check_rate "delay" rates.delay;
  check_rate "corrupt" rates.corrupt;
  check_rate "miss" rates.miss;
  let prng = Prng.create (Int64.of_int (Hashtbl.hash ("fault-plan", seed))) in
  let faults = ref [] in
  let push f = faults := f :: !faults in
  for node = 0 to nodes - 1 do
    if Prng.float prng < rates.crash then begin
      let from_round = 1 + Prng.int prng rounds in
      let duration = 1 + Prng.int prng 2 in
      push (Crash_node { node; from_round; until_round = from_round + duration })
    end
  done;
  for round = 1 to rounds do
    List.iter
      (fun (src, dst) ->
        if Prng.float prng < rates.drop then push (Drop_transfer { src; dst; round });
        if Prng.float prng < rates.delay then begin
          let seconds = 0.01 +. (Prng.float prng *. 0.09) in
          push (Delay_transfer { src; dst; round; seconds })
        end;
        if Prng.float prng < rates.corrupt then push (Corrupt_transfer { src; dst; round });
        if Prng.float prng < rates.miss then push (Miss_decrypt { src; dst; round }))
      edges
  done;
  List.rev !faults

let random_crashes ~seed ~nodes ~rounds ~count =
  if count < 0 then invalid_arg "Fault.random_crashes: count < 0";
  if count > nodes then invalid_arg "Fault.random_crashes: more crashes than nodes";
  if rounds < 1 then invalid_arg "Fault.random_crashes: rounds < 1";
  let prng = Prng.create (Int64.of_int (Hashtbl.hash ("fault-crashes", seed))) in
  let victims = Prng.sample_without_replacement prng count nodes in
  List.map
    (fun node ->
      let from_round = 1 + Prng.int prng rounds in
      Crash_node { node; from_round; until_round = from_round + 1 })
    victims

type wire_rates = { disconnect : float; stall : float; partition : float }

let no_wire_faults = { disconnect = 0.0; stall = 0.0; partition = 0.0 }

let random_wire_plan ~seed ~workers ~batches rates =
  if workers < 1 then invalid_arg "Fault.random_wire_plan: workers < 1";
  if batches < 1 then invalid_arg "Fault.random_wire_plan: batches < 1";
  check_rate "disconnect" rates.disconnect;
  check_rate "stall" rates.stall;
  check_rate "partition" rates.partition;
  let prng = Prng.create (Int64.of_int (Hashtbl.hash ("wire-plan", seed))) in
  let faults = ref [] in
  let push f = faults := f :: !faults in
  for worker = 0 to workers - 1 do
    for batch = 0 to batches - 1 do
      if Prng.float prng < rates.disconnect then push (Disconnect_worker { worker; batch });
      if Prng.float prng < rates.stall then begin
        let seconds = 0.05 +. (Prng.float prng *. 0.2) in
        push (Stall_worker { worker; batch; seconds })
      end;
      if Prng.float prng < rates.partition then begin
        let span = 1 + Prng.int prng 2 in
        push (Partition_worker { worker; from_batch = batch; until_batch = batch + span })
      end
    done
  done;
  List.rev !faults

let pp_fault ppf = function
  | Crash_node { node; from_round; until_round } ->
      Format.fprintf ppf "crash node %d rounds [%d, %d)" node from_round until_round
  | Drop_transfer { src; dst; round } ->
      Format.fprintf ppf "drop transfer %d->%d @ round %d" src dst round
  | Delay_transfer { src; dst; round; seconds } ->
      Format.fprintf ppf "delay transfer %d->%d @ round %d by %.3f s" src dst round seconds
  | Corrupt_transfer { src; dst; round } ->
      Format.fprintf ppf "corrupt transfer %d->%d @ round %d" src dst round
  | Miss_decrypt { src; dst; round } ->
      Format.fprintf ppf "force decrypt miss on %d->%d @ round %d" src dst round
  | Disconnect_worker { worker; batch } ->
      Format.fprintf ppf "disconnect worker %d @ batch %d" worker batch
  | Stall_worker { worker; batch; seconds } ->
      Format.fprintf ppf "stall worker %d @ batch %d for %.3f s" worker batch seconds
  | Partition_worker { worker; from_batch; until_batch } ->
      Format.fprintf ppf "partition worker %d batches [%d, %d)" worker from_batch until_batch

let pp_plan ppf plan =
  Format.fprintf ppf "@[<v>%d fault(s)" (List.length plan);
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_fault f) plan;
  Format.fprintf ppf "@]"

module Injector = struct
  type t = {
    faults : (int * fault) array;  (* stable ids for fired-tracking *)
    by_edge : (int * int * int, (int * fault) list) Hashtbl.t;
    crashes_by_node : (int, (int * fault) list) Hashtbl.t;
    wires_by_worker : (int, (int * fault) list) Hashtbl.t;
    fired : (int, unit) Hashtbl.t;
  }

  let create plan =
    let faults = Array.of_list (List.mapi (fun id f -> (id, f)) plan) in
    let by_edge = Hashtbl.create 64 in
    let crashes_by_node = Hashtbl.create 16 in
    let wires_by_worker = Hashtbl.create 16 in
    let push tbl key v =
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
      Hashtbl.replace tbl key (prev @ [ v ])
    in
    Array.iter
      (fun (id, f) ->
        match f with
        | Crash_node { node; _ } -> push crashes_by_node node (id, f)
        | Drop_transfer { src; dst; round }
        | Delay_transfer { src; dst; round; _ }
        | Corrupt_transfer { src; dst; round }
        | Miss_decrypt { src; dst; round } -> push by_edge (src, dst, round) (id, f)
        | Disconnect_worker { worker; _ }
        | Stall_worker { worker; _ }
        | Partition_worker { worker; _ } -> push wires_by_worker worker (id, f))
      faults;
    { faults; by_edge; crashes_by_node; wires_by_worker; fired = Hashtbl.create 16 }

  let fire t id = Hashtbl.replace t.fired id ()

  let crash_matches ~round ~starting (_, f) =
    match f with
    | Crash_node { from_round; until_round; _ } ->
        if starting then from_round = round else round >= from_round && round < until_round
    | _ -> false

  let crash_query t ~round ~node ~starting =
    match Hashtbl.find_opt t.crashes_by_node node with
    | None -> false
    | Some cs -> (
        match List.find_opt (crash_matches ~round ~starting) cs with
        | None -> false
        | Some (id, _) ->
            fire t id;
            true)

  let crashed t ~round ~node = crash_query t ~round ~node ~starting:false
  let crash_starting t ~round ~node = crash_query t ~round ~node ~starting:true

  let edge_faults t ~round ~src ~dst =
    match Hashtbl.find_opt t.by_edge (src, dst, round) with
    | None -> []
    | Some fs ->
        List.map
          (fun (id, f) ->
            fire t id;
            f)
          fs

  let wire_matches ~batch (_, f) =
    match f with
    | Disconnect_worker { batch = b; _ } | Stall_worker { batch = b; _ } -> b = batch
    | Partition_worker { from_batch; until_batch; _ } ->
        batch >= from_batch && batch < until_batch
    | _ -> false

  let wire_faults t ~batch ~worker =
    match Hashtbl.find_opt t.wires_by_worker worker with
    | None -> []
    | Some fs ->
        List.filter_map
          (fun ((id, f) as entry) ->
            if wire_matches ~batch entry then begin
              fire t id;
              Some f
            end
            else None)
          fs

  let injected t =
    let counts = Hashtbl.create 8 in
    List.iter (fun k -> Hashtbl.replace counts k 0) all_kinds;
    Hashtbl.iter
      (fun id () ->
        let _, f = t.faults.(id) in
        let k = kind_of f in
        Hashtbl.replace counts k (Hashtbl.find counts k + 1))
      t.fired;
    List.map (fun k -> (k, Hashtbl.find counts k)) all_kinds

  let total_injected t = Hashtbl.length t.fired
end
