(** Deterministic fault injection for the DStress runtime.

    The paper's deployment model is N mutually-distrusting banks on a real
    network: nodes crash, messages are dropped, delayed or corrupted, and
    the transfer protocol's geometric noise pushes decryptions outside the
    lookup table with probability [P_fail > 0] (Appendix B) — failures are
    expected and must be recovered from, not absorbed silently.

    A {!plan} is a static, fully deterministic schedule of faults: the same
    plan and the same engine seed always reproduce the same run, so every
    failure path is replayable in tests. The engine consults an {!Injector}
    built from the plan; the injector records which faults actually fired
    (a fault naming an edge the graph does not have, or a round the run
    never reaches, stays dormant) and reports per-kind counters for the
    engine's execution report. *)

type kind =
  | Crash  (** a block member fails (fail-stop) for a round interval *)
  | Drop  (** the relay leg of one edge transfer is lost *)
  | Delay  (** one edge transfer is delivered late *)
  | Corrupt  (** one edge transfer arrives but fails its integrity check *)
  | Decrypt_miss  (** one decryption is forced outside the lookup table *)
  | Disconnect  (** a worker's transport socket dies mid-batch *)
  | Stall  (** a worker stalls (stops writing) long enough to be suspected *)
  | Partition  (** a worker slot is unreachable for a batch interval *)

val kind_name : kind -> string
val all_kinds : kind list

val is_wire : kind -> bool
(** [Disconnect], [Stall] and [Partition] are {e wire-level} faults: they
    attack the distributed runtime's transport, not the protocol. The
    protocol-level accounting (tick-domain metrics, recovery counters,
    the report fields compared across executor backends) never includes
    them — a run that recovers from wire faults must be byte-identical,
    in the tick domain, to the same run without a transport at all. Wire
    firings are tallied in the wall-domain transport metrics instead. *)

(** {2 Simulated-time rounding contract}

    Fault delays are specified in float seconds but charged to the
    deterministic trace timeline in integer ticks. The single conversion
    rule lives here so every consumer (the engine's recovery accounting
    and the transport's injection bookkeeping) agrees bit-for-bit. *)

val ticks_per_second : float
(** 10{^6}: one simulated second costs as many ticks as one megabyte of
    wire traffic (wire bytes are charged 1 tick each). *)

val delay_ticks : float -> int
(** [delay_ticks s] is [s] seconds on the tick timeline: {b truncation
    toward zero} of [s *. ticks_per_second] ([int_of_float], i.e. floor
    for the non-negative inputs the planners produce; negative inputs
    round up toward zero and can never charge negative ticks — callers
    treat the result as a non-negative charge and {!Dstress_obs.Obs.advance}
    ignores values [<= 0]). Sub-microsecond delays therefore charge 0
    ticks by contract. *)

type fault =
  | Crash_node of { node : int; from_round : int; until_round : int }
      (** [node] is unavailable for rounds [\[from_round, until_round)];
          a standby replacement takes over its slot at [from_round]. *)
  | Drop_transfer of { src : int; dst : int; round : int }
  | Delay_transfer of { src : int; dst : int; round : int; seconds : float }
  | Corrupt_transfer of { src : int; dst : int; round : int }
  | Miss_decrypt of { src : int; dst : int; round : int }
      (** force one (member, bit) decryption of the transfer on edge
          [(src, dst)] at [round] to miss the lookup table *)
  | Disconnect_worker of { worker : int; batch : int }
      (** worker slot [worker]'s connection dies abruptly while serving
          its first task of dispatch batch [batch]; the coordinator must
          respawn the slot and redispatch the lost task *)
  | Stall_worker of { worker : int; batch : int; seconds : float }
      (** worker slot [worker] stalls for [seconds] before replying to its
          first task of batch [batch] — long stalls trip the heartbeat
          failure detector and exercise epoch fencing when the stalled
          worker's late reply finally arrives *)
  | Partition_worker of { worker : int; from_batch : int; until_batch : int }
      (** worker slot [worker] is unreachable (drops every frame, sends
          nothing) for batches [\[from_batch, until_batch)]; respawned
          replacements of the slot are equally unreachable, so the
          coordinator must degrade onto the remaining workers *)

val kind_of : fault -> kind

type plan = fault list
(** Order is irrelevant; faults at the same (edge, round) compose (the
    delay accumulates, and the most severe of drop/corrupt/miss wins). *)

val empty : plan

type rates = {
  crash : float;  (** per-node probability of one crash during the run *)
  drop : float;  (** per-(edge, round) probability *)
  delay : float;
  corrupt : float;
  miss : float;
}

val no_faults : rates

val random_plan :
  seed:int -> rounds:int -> nodes:int -> edges:(int * int) list -> rates -> plan
(** Draw a schedule from independent per-kind Bernoulli trials over every
    node (crashes) and every (edge, round) pair (transfer faults), using a
    private SplitMix stream: same arguments, same plan. Raises
    [Invalid_argument] if a rate is outside [\[0, 1\]] or [rounds < 1]. *)

val random_crashes : seed:int -> nodes:int -> rounds:int -> count:int -> plan
(** Exactly [count] single-round crashes of distinct nodes at random
    mid-run rounds — the CLI's [--fault-crashes] helper. *)

type wire_rates = {
  disconnect : float;  (** per-(worker, batch) probability *)
  stall : float;
  partition : float;
}

val no_wire_faults : wire_rates

val random_wire_plan :
  seed:int -> workers:int -> batches:int -> wire_rates -> plan
(** Draw a wire-fault schedule over every (worker slot, dispatch batch)
    pair from independent Bernoulli trials on a private SplitMix stream:
    same arguments, same plan. Stalls draw a duration in [\[0.05, 0.25)] s;
    partitions cover 1–2 batches. Raises [Invalid_argument] if a rate is
    outside [\[0, 1\]], or [workers < 1], or [batches < 1]. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_plan : Format.formatter -> plan -> unit

(** Runtime side: the engine queries the injector each round; the injector
    remembers which faults fired so the report can itemize them. *)
module Injector : sig
  type t

  val create : plan -> t

  val crashed : t -> round:int -> node:int -> bool
  (** Is [node] down at [round]? Marks the covering crash fault as fired. *)

  val crash_starting : t -> round:int -> node:int -> bool
  (** Does a crash of [node] begin exactly at [round]? This is the moment
      the engine must hand the node's state to its replacement. *)

  val edge_faults : t -> round:int -> src:int -> dst:int -> fault list
  (** All transfer faults scheduled for this edge at this round (marked as
      fired). *)

  val wire_faults : t -> batch:int -> worker:int -> fault list
  (** All wire faults covering this (worker slot, dispatch batch) pair —
      a [Partition_worker] matches every batch of its interval. Marked as
      fired (idempotently: an interval fault counts once however many
      batches consult it). *)

  val injected : t -> (kind * int) list
  (** Fired faults by kind, for every kind (zero entries included). *)

  val total_injected : t -> int
end
