(** Deterministic fault injection for the DStress runtime.

    The paper's deployment model is N mutually-distrusting banks on a real
    network: nodes crash, messages are dropped, delayed or corrupted, and
    the transfer protocol's geometric noise pushes decryptions outside the
    lookup table with probability [P_fail > 0] (Appendix B) — failures are
    expected and must be recovered from, not absorbed silently.

    A {!plan} is a static, fully deterministic schedule of faults: the same
    plan and the same engine seed always reproduce the same run, so every
    failure path is replayable in tests. The engine consults an {!Injector}
    built from the plan; the injector records which faults actually fired
    (a fault naming an edge the graph does not have, or a round the run
    never reaches, stays dormant) and reports per-kind counters for the
    engine's execution report. *)

type kind =
  | Crash  (** a block member fails (fail-stop) for a round interval *)
  | Drop  (** the relay leg of one edge transfer is lost *)
  | Delay  (** one edge transfer is delivered late *)
  | Corrupt  (** one edge transfer arrives but fails its integrity check *)
  | Decrypt_miss  (** one decryption is forced outside the lookup table *)

val kind_name : kind -> string
val all_kinds : kind list

type fault =
  | Crash_node of { node : int; from_round : int; until_round : int }
      (** [node] is unavailable for rounds [\[from_round, until_round)];
          a standby replacement takes over its slot at [from_round]. *)
  | Drop_transfer of { src : int; dst : int; round : int }
  | Delay_transfer of { src : int; dst : int; round : int; seconds : float }
  | Corrupt_transfer of { src : int; dst : int; round : int }
  | Miss_decrypt of { src : int; dst : int; round : int }
      (** force one (member, bit) decryption of the transfer on edge
          [(src, dst)] at [round] to miss the lookup table *)

val kind_of : fault -> kind

type plan = fault list
(** Order is irrelevant; faults at the same (edge, round) compose (the
    delay accumulates, and the most severe of drop/corrupt/miss wins). *)

val empty : plan

type rates = {
  crash : float;  (** per-node probability of one crash during the run *)
  drop : float;  (** per-(edge, round) probability *)
  delay : float;
  corrupt : float;
  miss : float;
}

val no_faults : rates

val random_plan :
  seed:int -> rounds:int -> nodes:int -> edges:(int * int) list -> rates -> plan
(** Draw a schedule from independent per-kind Bernoulli trials over every
    node (crashes) and every (edge, round) pair (transfer faults), using a
    private SplitMix stream: same arguments, same plan. Raises
    [Invalid_argument] if a rate is outside [\[0, 1\]] or [rounds < 1]. *)

val random_crashes : seed:int -> nodes:int -> rounds:int -> count:int -> plan
(** Exactly [count] single-round crashes of distinct nodes at random
    mid-run rounds — the CLI's [--fault-crashes] helper. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_plan : Format.formatter -> plan -> unit

(** Runtime side: the engine queries the injector each round; the injector
    remembers which faults fired so the report can itemize them. *)
module Injector : sig
  type t

  val create : plan -> t

  val crashed : t -> round:int -> node:int -> bool
  (** Is [node] down at [round]? Marks the covering crash fault as fired. *)

  val crash_starting : t -> round:int -> node:int -> bool
  (** Does a crash of [node] begin exactly at [round]? This is the moment
      the engine must hand the node's state to its replacement. *)

  val edge_faults : t -> round:int -> src:int -> dst:int -> fault list
  (** All transfer faults scheduled for this edge at this round (marked as
      fired). *)

  val injected : t -> (kind * int) list
  (** Fired faults by kind, for every kind (zero entries included). *)

  val total_injected : t -> int
end
