module Prng = Dstress_util.Prng
module Reference = Dstress_risk.Reference
open Dstress_graphgen

let prng () = Prng.of_int 0x66

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_core_periphery_shape () =
  let t = prng () in
  let topo = Topology.core_periphery t ~core:10 ~periphery:40 () in
  Alcotest.(check int) "n" 50 topo.Topology.n;
  Alcotest.(check int) "core size" 10 (List.length topo.Topology.core);
  let deg = Topology.degree_table topo in
  (* Core banks are densely connected: much higher degree than periphery. *)
  let core_avg =
    List.fold_left (fun a c -> a + deg.(c)) 0 topo.Topology.core |> fun s ->
    float_of_int s /. 10.0
  in
  let peri_avg =
    let sum = ref 0 in
    for i = 10 to 49 do
      sum := !sum + deg.(i)
    done;
    float_of_int !sum /. 40.0
  in
  Alcotest.(check bool) "core denser" true (core_avg > 3.0 *. peri_avg);
  (* Every peripheral bank links only to the core, with 1-2 links. *)
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "no periphery-periphery link" true (a < 10 || b < 10))
    topo.Topology.links;
  for i = 10 to 49 do
    Alcotest.(check bool) "periphery degree 1-2" true (deg.(i) >= 1 && deg.(i) <= 2)
  done

let test_core_periphery_links_valid () =
  let t = prng () in
  let topo = Topology.core_periphery t ~core:5 ~periphery:20 () in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "ordered" true (a < b);
      Alcotest.(check bool) "in range" true (a >= 0 && b < 25))
    topo.Topology.links;
  let sorted = List.sort_uniq compare topo.Topology.links in
  Alcotest.(check int) "no duplicates" (List.length topo.Topology.links)
    (List.length sorted)

let test_scale_free_degree_skew () =
  let t = prng () in
  let topo = Topology.scale_free t ~n:200 ~attach:2 ~max_degree:50 in
  let deg = Topology.degree_table topo in
  Array.iter (fun d -> Alcotest.(check bool) "cap respected" true (d <= 50)) deg;
  let sorted = Array.copy deg in
  Array.sort (fun a b -> compare b a) sorted;
  (* Heavy tail: the top vertex has far more links than the median. *)
  Alcotest.(check bool) "hub exists" true (sorted.(0) >= 3 * sorted.(100));
  Alcotest.(check bool) "connected-ish" true (Array.for_all (fun d -> d >= 1) deg)

let test_erdos_renyi_degree () =
  let t = prng () in
  let topo = Topology.erdos_renyi t ~n:300 ~avg_degree:6.0 ~max_degree:15 in
  let deg = Topology.degree_table topo in
  let avg = float_of_int (Array.fold_left ( + ) 0 deg) /. 300.0 in
  Alcotest.(check bool) "avg close to 6" true (abs_float (avg -. 6.0) < 1.0);
  Array.iter (fun d -> Alcotest.(check bool) "cap" true (d <= 15)) deg

let test_ring () =
  let topo = Topology.ring ~n:7 in
  Alcotest.(check int) "links" 7 (List.length topo.Topology.links);
  Array.iter
    (fun d -> Alcotest.(check int) "degree 2" 2 d)
    (Topology.degree_table topo)

let test_topology_determinism () =
  let a = Topology.core_periphery (Prng.of_int 5) ~core:6 ~periphery:10 () in
  let b = Topology.core_periphery (Prng.of_int 5) ~core:6 ~periphery:10 () in
  Alcotest.(check bool) "same seed, same graph" true (a.Topology.links = b.Topology.links)

(* ------------------------------------------------------------------ *)
(* Banking                                                             *)
(* ------------------------------------------------------------------ *)

let test_en_instance_valid () =
  let t = prng () in
  let topo = Topology.core_periphery t ~core:8 ~periphery:24 () in
  let inst = Banking.en_of_topology t topo () in
  Reference.en_validate inst;
  Alcotest.(check int) "banks" 32 inst.Reference.en_n;
  (* Every undirected link yields both debt directions. *)
  Alcotest.(check int) "debt count" (2 * List.length topo.Topology.links)
    (List.length inst.Reference.debts)

let test_egj_instance_valid () =
  let t = prng () in
  let topo = Topology.core_periphery t ~core:8 ~periphery:24 () in
  let inst = Banking.egj_of_topology t topo () in
  Reference.egj_validate inst;
  (* orig_val is the healthy fixpoint: unshocked stress test finds no
     failures at thresholds below 1.0. *)
  let r = Reference.elliott_golub_jackson inst in
  Alcotest.(check (float 1e-3)) "healthy network has zero TDS" 0.0 r.Reference.egj_tds

let test_shock_severity_ordering () =
  (* Cascade shocks must produce strictly larger shortfalls than absorbed
     shocks on the same network — the Appendix C phenomenology. *)
  let t = prng () in
  let topo = Topology.core_periphery t ~core:10 ~periphery:40 () in
  let inst = Banking.en_of_topology t topo () in
  let absorbed = Banking.shock_en (Prng.of_int 1) inst topo Banking.Absorbed in
  let cascade = Banking.shock_en (Prng.of_int 1) inst topo Banking.Cascade in
  let tds_a = (Reference.eisenberg_noe absorbed).Reference.en_tds in
  let tds_c = (Reference.eisenberg_noe cascade).Reference.en_tds in
  Alcotest.(check bool) "cascade >> absorbed" true (tds_c > 3.0 *. tds_a);
  Alcotest.(check bool) "absorbed small but nonzero" true (tds_a > 0.0)

let test_shock_egj_ordering () =
  let t = prng () in
  let topo = Topology.core_periphery t ~core:10 ~periphery:40 () in
  let inst = Banking.egj_of_topology t topo () in
  let absorbed = Banking.shock_egj (Prng.of_int 2) inst topo Banking.Absorbed in
  let cascade = Banking.shock_egj (Prng.of_int 2) inst topo Banking.Cascade in
  let tds_a = (Reference.elliott_golub_jackson absorbed).Reference.egj_tds in
  let tds_c = (Reference.elliott_golub_jackson cascade).Reference.egj_tds in
  Alcotest.(check bool) "cascade larger" true (tds_c > tds_a)

let test_appendix_c_convergence () =
  (* Appendix C: on the two-tier 50-bank network, running for
     I = log2(n) + 2 rounds already captures the shortfall — the TDS is
     within a few percent of the fully converged value (shocks either die
     out or cascade through the shallow core quickly). *)
  List.iter
    (fun shock ->
      let inst, _ = Banking.appendix_c_network (Prng.of_int 77) shock in
      let full = (Reference.eisenberg_noe ~iterations:60 inst).Reference.en_tds in
      let short_i = 2 + int_of_float (ceil (log (float_of_int 50) /. log 2.0)) in
      let short = (Reference.eisenberg_noe ~iterations:short_i inst).Reference.en_tds in
      Alcotest.(check bool) "log2 n rounds suffice" true
        (abs_float (short -. full) <= 0.05 *. Float.max full 1.0))
    [ Banking.Absorbed; Banking.Cascade ]

let test_cascade_hits_core () =
  (* In the cascade scenario, core banks themselves become insolvent. *)
  let inst, topo = Banking.appendix_c_network (Prng.of_int 99) Banking.Cascade in
  let r = Reference.eisenberg_noe inst in
  let core_impaired =
    List.exists (fun c -> r.Reference.prorate.(c) < 0.999) topo.Topology.core
  in
  Alcotest.(check bool) "core impaired" true core_impaired

let test_absorbed_spares_core () =
  let inst, topo = Banking.appendix_c_network (Prng.of_int 99) Banking.Absorbed in
  let r = Reference.eisenberg_noe inst in
  let failed_core =
    List.filter (fun c -> r.Reference.prorate.(c) < 0.9) topo.Topology.core
  in
  Alcotest.(check int) "core survives" 0 (List.length failed_core)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_topologies_respect_cap =
  QCheck2.Test.make ~name:"topologies respect degree cap" ~count:30
    QCheck2.Gen.(pair (int_bound 1000) (int_range 3 10))
    (fun (seed, cap) ->
      let t = Prng.of_int seed in
      let topo = Topology.erdos_renyi t ~n:50 ~avg_degree:8.0 ~max_degree:cap in
      Array.for_all (fun d -> d <= cap) (Topology.degree_table topo))

let prop_en_generator_valid =
  QCheck2.Test.make ~name:"EN generator always valid" ~count:30
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let t = Prng.of_int seed in
      let topo = Topology.scale_free t ~n:30 ~attach:2 ~max_degree:12 in
      let inst = Banking.en_of_topology t topo () in
      Reference.en_validate inst;
      true)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_topologies_respect_cap; prop_en_generator_valid ]
  in
  Alcotest.run "graphgen"
    [
      ( "topology",
        [
          Alcotest.test_case "core-periphery shape" `Quick test_core_periphery_shape;
          Alcotest.test_case "links valid" `Quick test_core_periphery_links_valid;
          Alcotest.test_case "scale-free skew" `Quick test_scale_free_degree_skew;
          Alcotest.test_case "erdos-renyi degree" `Quick test_erdos_renyi_degree;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "deterministic" `Quick test_topology_determinism;
        ] );
      ( "banking",
        [
          Alcotest.test_case "EN instance valid" `Quick test_en_instance_valid;
          Alcotest.test_case "EGJ instance valid" `Quick test_egj_instance_valid;
          Alcotest.test_case "shock severity ordering" `Quick test_shock_severity_ordering;
          Alcotest.test_case "EGJ shock ordering" `Quick test_shock_egj_ordering;
          Alcotest.test_case "appendix C convergence" `Quick test_appendix_c_convergence;
          Alcotest.test_case "cascade hits core" `Quick test_cascade_hits_core;
          Alcotest.test_case "absorbed spares core" `Quick test_absorbed_spares_core;
        ] );
      ("properties", qsuite);
    ]
