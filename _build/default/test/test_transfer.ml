open Dstress_transfer
module Group = Dstress_crypto.Group
module Prg = Dstress_crypto.Prg
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing

let grp = Group.by_name "toy"
let prg tag = Prg.of_string ("test-transfer:" ^ tag)

let small_setup =
  lazy (Setup.run (prg "setup") grp ~n:8 ~k:2 ~degree_bound:3 ~bits:8)

let table = lazy (Exp_elgamal.Table.make grp ~lo:(-300) ~hi:320)

let params () = { Protocol.alpha = 0.5; table = Lazy.force table }

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let test_setup_shapes () =
  let s = Lazy.force small_setup in
  Alcotest.(check int) "node count" 8 (Array.length s.Setup.nodes);
  Array.iter
    (fun ns ->
      Alcotest.(check int) "block size" 3 (Array.length ns.Setup.block);
      Alcotest.(check int) "first member is owner" ns.Setup.node ns.Setup.block.(0);
      Alcotest.(check int) "cert count" 3 (Array.length ns.Setup.certificates);
      Alcotest.(check int) "neighbor keys" 3 (Array.length ns.Setup.neighbor_keys);
      (* members distinct *)
      let sorted = List.sort_uniq compare (Array.to_list ns.Setup.block) in
      Alcotest.(check int) "distinct members" 3 (List.length sorted))
    s.Setup.nodes;
  Alcotest.(check int) "agg block size" 3 (Array.length s.Setup.agg_block)

let test_setup_roster_verifies () =
  let s = Lazy.force small_setup in
  Alcotest.(check bool) "roster signature" true (Setup.verify_roster s)

let test_setup_certificates_verify () =
  let s = Lazy.force small_setup in
  Array.iter
    (fun ns ->
      Array.iter
        (fun cert ->
          Alcotest.(check bool) "certificate verifies" true (Setup.verify_certificate s cert))
        ns.Setup.certificates)
    s.Setup.nodes

let test_setup_tampered_certificate_fails () =
  let s = Lazy.force small_setup in
  let cert = s.Setup.nodes.(0).Setup.certificates.(0) in
  let tampered =
    { cert with Setup.member_keys = Array.map (Array.map (fun k -> Group.mul grp k (Group.g grp)))
                             cert.Setup.member_keys }
  in
  Alcotest.(check bool) "tampered fails" false (Setup.verify_certificate s tampered)

let test_setup_certificate_keys_rerandomized () =
  (* cert key = public key ^ neighbor_key, for every member and bit. *)
  let s = Lazy.force small_setup in
  let ns = s.Setup.nodes.(2) in
  Array.iteri
    (fun slot cert ->
      let r = ns.Setup.neighbor_keys.(slot) in
      Array.iteri
        (fun mi member ->
          let pubs = s.Setup.nodes.(member).Setup.keys.Keys.publics in
          Array.iteri
            (fun t pk ->
              Alcotest.(check bool) "key matches pk^r" true
                (Group.elt_equal (Group.pow grp pk r) cert.Setup.member_keys.(mi).(t)))
            pubs)
        ns.Setup.block)
    ns.Setup.certificates

let test_setup_rejects_bad_params () =
  Alcotest.(check bool) "k+1 > n" true
    (try
       ignore (Setup.run (prg "bad") grp ~n:2 ~k:5 ~degree_bound:1 ~bits:4);
       false
     with Invalid_argument _ -> true)

let test_setup_member_index () =
  let s = Lazy.force small_setup in
  let block = Setup.block_of s 4 in
  Array.iteri
    (fun i m -> Alcotest.(check int) "index" i (Setup.member_index s ~block_owner:4 ~node:m))
    block

let test_setup_traffic_positive () =
  let s = Lazy.force small_setup in
  Alcotest.(check bool) "setup traffic > 0" true (Setup.setup_traffic_bytes s > 0)

(* ------------------------------------------------------------------ *)
(* Protocol: correctness (Theorem 1)                                   *)
(* ------------------------------------------------------------------ *)

let run_transfer ?(variant = Protocol.Final) ?(message = 0xA7) () =
  let s = Lazy.force small_setup in
  let sender = 1 and receiver = 5 in
  let m = Bitvec.of_int ~bits:8 message in
  let shares = Sharing.share (prg "msg") ~parties:3 m in
  let traffic = Traffic.create 8 in
  let outcome =
    Protocol.transfer (params ()) ~prg:(prg "run") ~noise:(Prng.of_int 0x11) ~traffic
      ~variant ~setup:s ~sender ~receiver ~neighbor_slot:1 ~shares
  in
  (m, shares, outcome, traffic)

let test_transfer_correct_all_variants () =
  List.iter
    (fun (name, variant) ->
      List.iter
        (fun message ->
          let m, _, outcome, _ = run_transfer ~variant ~message () in
          Alcotest.(check int) (name ^ " no failures") 0 outcome.Protocol.failures;
          Alcotest.(check bool)
            (Printf.sprintf "%s preserves message %#x" name message)
            true
            (Bitvec.equal m (Sharing.reconstruct outcome.Protocol.shares)))
        [ 0x00; 0x01; 0xA7; 0xFF ])
    [
      ("strawman1", Protocol.Strawman1);
      ("strawman2", Protocol.Strawman2);
      ("strawman3", Protocol.Strawman3);
      ("final", Protocol.Final);
    ]

let test_transfer_shares_change () =
  (* The new shares must be a fresh sharing, not the old one shipped
     across (subsharing re-randomizes). *)
  let _, old_shares, outcome, _ = run_transfer ~variant:Protocol.Final () in
  let same =
    Array.for_all2 (fun a b -> Bitvec.equal a b) old_shares outcome.Protocol.shares
  in
  Alcotest.(check bool) "shares re-randomized" false same

let test_transfer_repeated_messages () =
  let t = Prng.of_int 0x77 in
  for _ = 1 to 10 do
    let message = Prng.int t 256 in
    let m, _, outcome, _ = run_transfer ~variant:Protocol.Final ~message () in
    Alcotest.(check bool) "roundtrip" true
      (Bitvec.equal m (Sharing.reconstruct outcome.Protocol.shares))
  done

let test_transfer_bad_shapes () =
  let s = Lazy.force small_setup in
  let traffic = Traffic.create 8 in
  Alcotest.check_raises "wrong share count"
    (Invalid_argument "Protocol.transfer: wrong share count") (fun () ->
      ignore
        (Protocol.transfer (params ()) ~prg:(prg "bad") ~noise:(Prng.of_int 1) ~traffic
           ~variant:Protocol.Final ~setup:s ~sender:0 ~receiver:1 ~neighbor_slot:0
           ~shares:[| Bitvec.create 8 false |]));
  Alcotest.check_raises "bad slot" (Invalid_argument "Protocol.transfer: bad neighbor slot")
    (fun () ->
      ignore
        (Protocol.transfer (params ()) ~prg:(prg "bad2") ~noise:(Prng.of_int 1) ~traffic
           ~variant:Protocol.Final ~setup:s ~sender:0 ~receiver:1 ~neighbor_slot:9
           ~shares:(Array.make 3 (Bitvec.create 8 false))))

let test_transfer_tiny_table_fails () =
  (* A lookup table too small for the noise range must produce decryption
     failures (the P_fail event of Appendix B). *)
  let s = Lazy.force small_setup in
  let tiny = { Protocol.alpha = 0.9; table = Exp_elgamal.Table.make grp ~lo:0 ~hi:3 } in
  let m = Bitvec.of_int ~bits:8 0x5A in
  let shares = Sharing.share (prg "tiny") ~parties:3 m in
  let traffic = Traffic.create 8 in
  let outcome =
    Protocol.transfer tiny ~prg:(prg "tiny-run") ~noise:(Prng.of_int 3) ~traffic
      ~variant:Protocol.Final ~setup:s ~sender:1 ~receiver:5 ~neighbor_slot:0 ~shares
  in
  Alcotest.(check bool) "failures occurred" true (outcome.Protocol.failures > 0)

(* ------------------------------------------------------------------ *)
(* Protocol: traffic accounting                                        *)
(* ------------------------------------------------------------------ *)

let test_transfer_traffic_matches_formula () =
  List.iter
    (fun (name, variant) ->
      let _, _, _, traffic = run_transfer ~variant () in
      let _, _, _, expected_total =
        Protocol.expected_bytes variant ~k:2 ~bits:8 ~element_bytes:(Group.element_bytes grp)
      in
      Alcotest.(check int) (name ^ " total bytes") expected_total (Traffic.total traffic))
    [
      ("strawman1", Protocol.Strawman1);
      ("strawman2", Protocol.Strawman2);
      ("strawman3", Protocol.Strawman3);
      ("final", Protocol.Final);
    ]

let test_transfer_final_cheaper_than_strawman2 () =
  (* The homomorphic combine shrinks i->j and j->B_j traffic. *)
  let _, _, _, t2 = run_transfer ~variant:Protocol.Strawman2 () in
  let _, _, _, tf = run_transfer ~variant:Protocol.Final () in
  Alcotest.(check bool) "final cheaper" true (Traffic.total tf < Traffic.total t2)

let test_transfer_receiver_traffic_constant_in_k () =
  (* §5.3: "The nodes in B_j each receive a single encrypted share,
     regardless of the block size". Verified via the closed form. *)
  let per_receiver k =
    let _, _, r, _ =
      Protocol.expected_bytes Protocol.Final ~k ~bits:12 ~element_bytes:48
    in
    r
  in
  Alcotest.(check int) "k=7 vs k=19" (per_receiver 7) (per_receiver 19)

(* ------------------------------------------------------------------ *)
(* Side channel: strawman 3 vs final                                   *)
(* ------------------------------------------------------------------ *)

let test_strawman3_sums_exact () =
  (* Without noise the recipients see the exact bit-sums: all values lie
     in [0, k+1] — a recognizable, attributable signal. *)
  let _, _, outcome, _ = run_transfer ~variant:Protocol.Strawman3 () in
  match outcome.Protocol.sums with
  | None -> Alcotest.fail "expected sums"
  | Some sums ->
      Array.iter
        (Array.iter (fun v ->
             Alcotest.(check bool) "sum in [0,3]" true (v >= 0 && v <= 3)))
        sums

let test_final_sums_noised () =
  (* With noise, some observed sums fall outside [0, k+1] — the signal is
     no longer the raw count — while parity (hence the message) is
     preserved. *)
  let outside = ref 0 in
  let t = Prng.of_int 0x5EED in
  for trial = 1 to 20 do
    let s = Lazy.force small_setup in
    let m = Bitvec.of_int ~bits:8 (Prng.int t 256) in
    let shares = Sharing.share (prg ("noised" ^ string_of_int trial)) ~parties:3 m in
    let traffic = Traffic.create 8 in
    let outcome =
      Protocol.transfer (params ())
        ~prg:(prg ("run-noised" ^ string_of_int trial))
        ~noise:(Prng.of_int (trial * 97))
        ~traffic ~variant:Protocol.Final ~setup:s ~sender:1 ~receiver:5 ~neighbor_slot:0
        ~shares
    in
    (match outcome.Protocol.sums with
    | None -> Alcotest.fail "expected sums"
    | Some sums ->
        Array.iter (Array.iter (fun v -> if v < 0 || v > 3 then incr outside)) sums);
    Alcotest.(check bool) "message still correct" true
      (Bitvec.equal m (Sharing.reconstruct outcome.Protocol.shares))
  done;
  Alcotest.(check bool) "noise visible" true (!outside > 0)

let test_final_noise_is_even () =
  (* The added noise must be even: observed sum and true subshare-bit sum
     share parity. We verify indirectly — messages always reconstruct —
     and directly on the mechanism in test_dp. Here: across many
     transfers, no parity error ever occurs. *)
  let t = Prng.of_int 0xE7E4 in
  for trial = 1 to 10 do
    let message = Prng.int t 256 in
    let m, _, outcome, _ = run_transfer ~variant:Protocol.Final ~message () in
    ignore trial;
    Alcotest.(check bool) "parity preserved" true
      (Bitvec.equal m (Sharing.reconstruct outcome.Protocol.shares))
  done

(* ------------------------------------------------------------------ *)
(* Edge privacy accounting (Appendix B)                                *)
(* ------------------------------------------------------------------ *)

let test_edge_privacy_paper_numbers () =
  let cfg = Edge_privacy.paper_example in
  Alcotest.(check int) "Delta = 20" 20 (Edge_privacy.sensitivity cfg);
  (* N_q = 369.6e9: the paper rounds to "about 370 billion". *)
  let n_q = Edge_privacy.total_transfers cfg in
  Alcotest.(check bool) "N_q ~ 370e9" true (abs_float (n_q -. 369.6e9) < 1e9);
  (* With the paper's N_l ~ 230e6, eps/transfer ~ 2.34e-7 and the budget
     numbers of Appendix B follow. *)
  let alpha = Edge_privacy.max_alpha cfg ~table_entries:230e6 in
  let eps = Edge_privacy.per_transfer_epsilon ~alpha in
  Alcotest.(check bool) "eps/transfer ~ 2.3e-7" true
    (eps > 1.8e-7 && eps < 2.8e-7);
  let per_iter = Edge_privacy.per_iteration_epsilon cfg ~alpha in
  Alcotest.(check bool) "eps/iteration ~ 0.0014" true
    (per_iter > 0.0011 && per_iter < 0.0018);
  let yearly = Edge_privacy.yearly_epsilon cfg ~alpha in
  Alcotest.(check bool) "eps/year ~ 0.047" true (yearly > 0.037 && yearly < 0.058)

let test_edge_privacy_analyze_consistent () =
  let r = Edge_privacy.analyze Edge_privacy.paper_example in
  Alcotest.(check bool) "alpha in (0,1)" true (r.Edge_privacy.alpha > 0.0 && r.Edge_privacy.alpha < 1.0);
  Alcotest.(check (float 1e-12)) "eps consistency"
    (r.Edge_privacy.eps_per_iteration *. 33.0)
    r.Edge_privacy.eps_per_year;
  (* Failure constraint actually satisfied. *)
  let pfail =
    Dstress_dp.Mechanism.failure_probability ~alpha:r.Edge_privacy.alpha
      ~table_entries:(int_of_float r.Edge_privacy.n_l)
  in
  Alcotest.(check bool) "P_fail <= 1/N_q" true (pfail <= 1.0 /. r.Edge_privacy.n_q *. 1.01)

let test_edge_privacy_more_ram_less_noise_needed () =
  (* Bigger lookup tables tolerate more noise: alpha_max increases. *)
  let cfg = Edge_privacy.paper_example in
  let a_small = Edge_privacy.max_alpha cfg ~table_entries:1e6 in
  let a_big = Edge_privacy.max_alpha cfg ~table_entries:1e9 in
  Alcotest.(check bool) "monotone in table size" true (a_big > a_small)

let () =
  Alcotest.run "transfer"
    [
      ( "setup",
        [
          Alcotest.test_case "shapes" `Quick test_setup_shapes;
          Alcotest.test_case "roster verifies" `Quick test_setup_roster_verifies;
          Alcotest.test_case "certificates verify" `Quick test_setup_certificates_verify;
          Alcotest.test_case "tampered cert fails" `Quick test_setup_tampered_certificate_fails;
          Alcotest.test_case "keys re-randomized" `Quick test_setup_certificate_keys_rerandomized;
          Alcotest.test_case "rejects bad params" `Quick test_setup_rejects_bad_params;
          Alcotest.test_case "member index" `Quick test_setup_member_index;
          Alcotest.test_case "setup traffic" `Quick test_setup_traffic_positive;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "correct (all variants)" `Quick test_transfer_correct_all_variants;
          Alcotest.test_case "shares re-randomized" `Quick test_transfer_shares_change;
          Alcotest.test_case "random messages" `Quick test_transfer_repeated_messages;
          Alcotest.test_case "bad shapes" `Quick test_transfer_bad_shapes;
          Alcotest.test_case "tiny table fails" `Quick test_transfer_tiny_table_fails;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "matches formula" `Quick test_transfer_traffic_matches_formula;
          Alcotest.test_case "final cheaper than s2" `Quick test_transfer_final_cheaper_than_strawman2;
          Alcotest.test_case "receiver constant in k" `Quick
            test_transfer_receiver_traffic_constant_in_k;
        ] );
      ( "side-channel",
        [
          Alcotest.test_case "strawman3 sums exact" `Quick test_strawman3_sums_exact;
          Alcotest.test_case "final sums noised" `Quick test_final_sums_noised;
          Alcotest.test_case "noise even" `Quick test_final_noise_is_even;
        ] );
      ( "edge-privacy",
        [
          Alcotest.test_case "paper numbers" `Quick test_edge_privacy_paper_numbers;
          Alcotest.test_case "analyze consistent" `Quick test_edge_privacy_analyze_consistent;
          Alcotest.test_case "more ram, more alpha" `Quick
            test_edge_privacy_more_ram_less_noise_needed;
        ] );
    ]
