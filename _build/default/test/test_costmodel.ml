module Group = Dstress_crypto.Group
module Prng = Dstress_util.Prng
open Dstress_costmodel
open Dstress_baseline

let grp = Group.by_name "toy"

(* Fixed synthetic units so projection tests are deterministic and fast. *)
let units =
  {
    Projection.ot_seconds_per_and_per_pair = 1e-6;
    mpc_bytes_per_and_per_pair = 16.25;
    exp_seconds = 2e-5;
    element_bytes = 8;
  }

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)
(* ------------------------------------------------------------------ *)

let project ?iterations ?(n = 500) ?(d = 40) ?(k = 19) () =
  Projection.project units { Projection.n; d; k; l = 16; iterations; tree_fanout = 100 }

let test_measure_units_sane () =
  let u = Projection.measure_units grp ~seed:"t" in
  Alcotest.(check bool) "ot time positive" true (u.Projection.ot_seconds_per_and_per_pair > 0.0);
  Alcotest.(check bool) "ot time sub-ms" true (u.Projection.ot_seconds_per_and_per_pair < 1e-3);
  (* IKNP moves at least kappa bits per OT. *)
  Alcotest.(check bool) "bytes >= kappa/8" true (u.Projection.mpc_bytes_per_and_per_pair >= 16.0);
  Alcotest.(check bool) "exp positive" true (u.Projection.exp_seconds > 0.0);
  Alcotest.(check int) "element bytes" (Group.element_bytes grp) u.Projection.element_bytes

let test_projection_iterations_default () =
  let pr = project ~n:1750 () in
  Alcotest.(check int) "log2 1750 rounds up to 11" 11 pr.Projection.iterations_used;
  let pr2 = project ~iterations:7 () in
  Alcotest.(check int) "explicit" 7 pr2.Projection.iterations_used

let test_projection_monotone_in_d () =
  let t10 = (Projection.project units { Projection.paper_scale with Projection.d = 10 }).Projection.total_seconds in
  let t100 = (Projection.project units Projection.paper_scale).Projection.total_seconds in
  Alcotest.(check bool) "D=100 costs more" true (t100 > 3.0 *. t10)

let test_projection_traffic_monotone_in_k () =
  let b k = (project ~k ()).Projection.total_bytes_per_node in
  Alcotest.(check bool) "k=19 > k=7" true (b 19 > b 7)

let test_projection_total_is_sum () =
  let pr = project () in
  Alcotest.(check (float 1e-6)) "sum of phases"
    (pr.Projection.compute_seconds +. pr.Projection.communicate_seconds
    +. pr.Projection.aggregate_seconds)
    pr.Projection.total_seconds;
  Alcotest.(check (float 1e-6)) "traffic sum"
    (pr.Projection.mpc_bytes_per_node +. pr.Projection.transfer_bytes_per_node)
    pr.Projection.total_bytes_per_node

let test_update_ands_grows_linearly_in_d () =
  let a10 = Projection.update_ands ~l:12 ~d:10 in
  let a100 = Projection.update_ands ~l:12 ~d:100 in
  let ratio = float_of_int a100 /. float_of_int a10 in
  (* The per-slot work dominates: close to x10 with a fixed offset. *)
  Alcotest.(check bool) "roughly linear in D" true (ratio > 6.0 && ratio < 10.5)

let test_transfer_wall_monotone () =
  let t k = Projection.transfer_wall_seconds units ~k ~l:12 in
  Alcotest.(check bool) "monotone in k" true (t 19 > t 7);
  Alcotest.(check bool) "positive" true (t 3 > 0.0)

(* ------------------------------------------------------------------ *)
(* Utility                                                             *)
(* ------------------------------------------------------------------ *)

let test_utility_paper_numbers () =
  let p = Utility.paper_policy in
  let eps = Utility.epsilon_for_accuracy p in
  Alcotest.(check bool) "eps ~ 0.23" true (abs_float (eps -. 0.2303) < 0.001);
  Alcotest.(check int) "3 runs per year" 3 (Utility.runs_per_year p)

let test_utility_epsilon_monotone_in_accuracy () =
  let p = Utility.paper_policy in
  let tighter = { p with Utility.accuracy_dollars = 100e9 } in
  Alcotest.(check bool) "tighter accuracy costs more eps" true
    (Utility.epsilon_for_accuracy tighter > Utility.epsilon_for_accuracy p)

let test_utility_monte_carlo () =
  let p = Utility.paper_policy in
  let eps = Utility.epsilon_for_accuracy p in
  let stats = Utility.monte_carlo (Prng.of_int 3) p ~epsilon:eps ~samples:50_000 in
  (* The paper's half-tail convention yields ~90% two-sided coverage. *)
  Alcotest.(check bool) "coverage near 90%" true
    (stats.Utility.within_target > 0.85 && stats.Utility.within_target < 0.95);
  (* Mean |Laplace(b)| = b. *)
  let scale = Utility.noise_scale_dollars p ~epsilon:eps in
  Alcotest.(check bool) "mean |err| ~ scale" true
    (abs_float (stats.Utility.mean_abs_error -. scale) /. scale < 0.05)

let test_utility_detection () =
  let p = Utility.paper_policy in
  let tp, fp =
    Utility.detection_rate (Prng.of_int 9) p ~epsilon:0.23 ~crisis_tds:1500e9
      ~calm_tds:500e9 ~threshold:1000e9 ~samples:20_000
  in
  Alcotest.(check bool) "TPR high" true (tp > 0.95);
  Alcotest.(check bool) "FPR low" true (fp < 0.05)

let test_utility_rejects_bad_policy () =
  Alcotest.(check bool) "bad confidence" true
    (try
       ignore
         (Utility.epsilon_for_accuracy { Utility.paper_policy with Utility.confidence = 1.5 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

let test_matmul_circuit_correct () =
  (* 2x2 integer product through the plaintext evaluator. *)
  let bits = 8 in
  let c = Matmul.circuit ~n:2 ~bits in
  let encode m = List.concat_map (fun v -> List.init bits (fun i -> (v lsr i) land 1 = 1)) m in
  let a = [ 3; 5; 2; 7 ] and b = [ 1; 4; 6; 2 ] in
  let out = Dstress_circuit.Circuit.eval c (Array.of_list (encode a @ encode b)) in
  let entry idx =
    let r = ref 0 in
    for i = bits - 1 downto 0 do
      r := (!r lsl 1) lor (if out.((idx * bits) + i) then 1 else 0)
    done;
    !r
  in
  (* [3 5; 2 7] x [1 4; 6 2] = [33 22; 44 22] *)
  Alcotest.(check int) "c00" 33 (entry 0);
  Alcotest.(check int) "c01" 22 (entry 1);
  Alcotest.(check int) "c10" 44 (entry 2);
  Alcotest.(check int) "c11" 22 (entry 3)

let test_matmul_and_gates_cubic () =
  let a4 = Matmul.and_gates ~n:4 ~bits:8 in
  let a8 = Matmul.and_gates ~n:8 ~bits:8 in
  let ratio = float_of_int a8 /. float_of_int a4 in
  Alcotest.(check bool) "x8 for doubled n" true (ratio > 6.5 && ratio < 9.5)

let test_matmul_measure () =
  let m = Matmul.measure grp ~parties:3 ~n:3 ~bits:8 ~seed:"t" in
  Alcotest.(check bool) "time positive" true (m.Matmul.seconds > 0.0);
  Alcotest.(check bool) "bytes positive" true (m.Matmul.total_bytes > 0);
  Alcotest.(check int) "n recorded" 3 m.Matmul.n

let test_fit_and_extrapolate () =
  (* Perfect cubic data recovers the coefficient. *)
  let mk n = { Matmul.n; seconds = 2e-4 *. float_of_int (n * n * n); and_count = 0; total_bytes = 0 } in
  let c = Matmul.fit_cubic [ mk 5; mk 10; mk 20 ] in
  Alcotest.(check bool) "coefficient recovered" true (abs_float (c -. 2e-4) < 1e-9);
  let s = Matmul.extrapolate_seconds ~c ~n:100 ~powers:3 in
  Alcotest.(check (float 1.0)) "extrapolation" (2e-4 *. 1e6 *. 3.0) s;
  Alcotest.(check bool) "years" true (abs_float (Matmul.years 31_557_600.0 -. 1.0) < 1e-9)

let () =
  Alcotest.run "costmodel"
    [
      ( "projection",
        [
          Alcotest.test_case "measure units" `Quick test_measure_units_sane;
          Alcotest.test_case "iteration default" `Quick test_projection_iterations_default;
          Alcotest.test_case "monotone in D" `Quick test_projection_monotone_in_d;
          Alcotest.test_case "traffic monotone in k" `Quick test_projection_traffic_monotone_in_k;
          Alcotest.test_case "totals are sums" `Quick test_projection_total_is_sum;
          Alcotest.test_case "ANDs linear in D" `Quick test_update_ands_grows_linearly_in_d;
          Alcotest.test_case "transfer wall" `Quick test_transfer_wall_monotone;
        ] );
      ( "utility",
        [
          Alcotest.test_case "paper numbers" `Quick test_utility_paper_numbers;
          Alcotest.test_case "eps monotone in accuracy" `Quick
            test_utility_epsilon_monotone_in_accuracy;
          Alcotest.test_case "monte carlo" `Quick test_utility_monte_carlo;
          Alcotest.test_case "crisis detection" `Quick test_utility_detection;
          Alcotest.test_case "rejects bad policy" `Quick test_utility_rejects_bad_policy;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "matmul circuit" `Quick test_matmul_circuit_correct;
          Alcotest.test_case "cubic AND growth" `Quick test_matmul_and_gates_cubic;
          Alcotest.test_case "measure" `Quick test_matmul_measure;
          Alcotest.test_case "fit + extrapolate" `Quick test_fit_and_extrapolate;
        ] );
    ]
