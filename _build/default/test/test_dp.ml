open Dstress_dp
module Prng = Dstress_util.Prng
module Stats = Dstress_util.Stats
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Circuit = Dstress_circuit.Circuit

let prng () = Prng.of_int 0xD9

(* ------------------------------------------------------------------ *)
(* Laplace                                                             *)
(* ------------------------------------------------------------------ *)

let test_laplace_moments () =
  let t = prng () in
  let scale = 3.0 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Mechanism.laplace t ~scale) in
  Alcotest.(check bool) "mean near 0" true (abs_float (Stats.mean xs) < 0.1);
  (* Var(Laplace(b)) = 2 b^2 -> std = b * sqrt 2. *)
  let expected_std = scale *. sqrt 2.0 in
  Alcotest.(check bool) "std near b*sqrt2" true
    (abs_float (Stats.stddev xs -. expected_std) < 0.15)

let test_laplace_symmetric () =
  let t = prng () in
  let n = 20_000 in
  let pos = ref 0 in
  for _ = 1 to n do
    if Mechanism.laplace t ~scale:1.0 > 0.0 then incr pos
  done;
  Alcotest.(check bool) "symmetric" true (abs (!pos - (n / 2)) < 500)

let test_laplace_rejects_bad_scale () =
  Alcotest.check_raises "scale <= 0" (Invalid_argument "Mechanism.laplace: scale <= 0")
    (fun () -> ignore (Mechanism.laplace (prng ()) ~scale:0.0))

let test_laplace_mechanism_centers () =
  let t = prng () in
  let n = 20_000 in
  let xs =
    Array.init n (fun _ ->
        Mechanism.laplace_mechanism t ~sensitivity:2.0 ~epsilon:1.0 100.0)
  in
  Alcotest.(check bool) "centered at value" true (abs_float (Stats.mean xs -. 100.0) < 0.1)

(* ------------------------------------------------------------------ *)
(* Geometric                                                           *)
(* ------------------------------------------------------------------ *)

let test_geometric_one_sided_pmf () =
  let t = prng () in
  let alpha = 0.6 in
  let n = 100_000 in
  let counts = Array.make 20 0 in
  for _ = 1 to n do
    let k = Mechanism.geometric_one_sided t ~alpha in
    if k < 20 then counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 5 do
    let expected = (1.0 -. alpha) *. (alpha ** float_of_int k) in
    let got = float_of_int counts.(k) /. float_of_int n in
    Alcotest.(check bool)
      (Printf.sprintf "P(X=%d)" k)
      true
      (abs_float (got -. expected) < 0.01)
  done

let test_geometric_two_sided_symmetric_pmf () =
  let t = prng () in
  let alpha = 0.5 in
  let n = 100_000 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to n do
    let d = Mechanism.geometric_two_sided t ~alpha in
    Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
  done;
  let freq d = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts d)) /. float_of_int n in
  for d = -3 to 3 do
    let expected = (1.0 -. alpha) /. (1.0 +. alpha) *. (alpha ** float_of_int (abs d)) in
    Alcotest.(check bool)
      (Printf.sprintf "P(Y=%d)" d)
      true
      (abs_float (freq d -. expected) < 0.01)
  done

let test_transfer_noise_is_even () =
  let t = prng () in
  for _ = 1 to 1000 do
    let v = Mechanism.transfer_noise t ~alpha:0.5 ~delta:20 in
    Alcotest.(check int) "even" 0 (abs v mod 2)
  done

let test_geometric_mechanism_dp_ratio () =
  (* Empirical check of the DP inequality: for neighboring values v, v+1
     (sensitivity 1) the output distributions should differ by at most
     e^eps pointwise (with sampling slack). *)
  let eps = 0.8 in
  let n = 200_000 in
  let sample v =
    let t = prng () in
    let counts = Hashtbl.create 64 in
    for _ = 1 to n do
      let o = Mechanism.geometric_mechanism t ~sensitivity:1 ~epsilon:eps v in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o))
    done;
    counts
  in
  let c0 = sample 0 and c1 = sample 1 in
  let ratio_ok = ref true in
  Hashtbl.iter
    (fun o n0 ->
      match Hashtbl.find_opt c1 o with
      | Some n1 when n0 > 1000 && n1 > 1000 ->
          let r = float_of_int n0 /. float_of_int n1 in
          if r > exp eps *. 1.25 || r < exp (-.eps) /. 1.25 then ratio_ok := false
      | _ -> ())
    c0;
  Alcotest.(check bool) "pointwise ratio bounded" true !ratio_ok

let test_alpha_epsilon_inverse () =
  Alcotest.(check (float 1e-9)) "roundtrip" 0.37
    (Mechanism.alpha_of_epsilon
       ~epsilon:(Mechanism.epsilon_of_alpha ~alpha:0.37))

let test_cdf_two_sided () =
  let alpha = 0.5 in
  (* F(0) = (1-a)/(1+a) = 1/3 for a = 0.5. *)
  Alcotest.(check (float 1e-9)) "F(0)" (1.0 /. 3.0) (Mechanism.cdf_two_sided ~alpha 0);
  Alcotest.(check (float 1e-9)) "F(-1)" 0.0 (Mechanism.cdf_two_sided ~alpha (-1));
  (* F(k) -> 1. *)
  Alcotest.(check bool) "limit" true (Mechanism.cdf_two_sided ~alpha 60 > 0.999999)

let test_failure_probability () =
  (* For alpha -> 0 the noise is almost surely 0 and P_fail -> 0; for a
     1-entry table, P_fail should be substantial. *)
  Alcotest.(check bool) "tiny alpha" true
    (Mechanism.failure_probability ~alpha:0.01 ~table_entries:100 < 1e-10);
  Alcotest.(check bool) "large alpha small table" true
    (Mechanism.failure_probability ~alpha:0.99 ~table_entries:4 > 0.5)

let test_max_alpha_bisection () =
  let table_entries = 1000 in
  let target = 1e-6 in
  let alpha = Mechanism.max_alpha_for_failure ~table_entries ~target in
  Alcotest.(check bool) "achieves target" true
    (Mechanism.failure_probability ~alpha ~table_entries <= target);
  Alcotest.(check bool) "is maximal" true
    (Mechanism.failure_probability ~alpha:(alpha +. 0.01) ~table_entries > target)

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_accounting () =
  let b = Budget.create ~epsilon_max:(log 2.0) in
  Alcotest.(check bool) "first query fits" true
    (Result.is_ok (Budget.spend b ~label:"q1" ~epsilon:0.23));
  Alcotest.(check bool) "second query fits" true
    (Result.is_ok (Budget.spend b ~label:"q2" ~epsilon:0.23));
  Alcotest.(check bool) "third query fits" true
    (Result.is_ok (Budget.spend b ~label:"q3" ~epsilon:0.23));
  (* ln 2 = 0.693: exactly three 0.23 queries fit (paper §4.5). *)
  Alcotest.(check bool) "fourth query rejected" true
    (Result.is_error (Budget.spend b ~label:"q4" ~epsilon:0.23));
  Alcotest.(check int) "ledger" 3 (List.length (Budget.ledger b))

let test_budget_rejection_does_not_charge () =
  let b = Budget.create ~epsilon_max:1.0 in
  ignore (Budget.spend b ~label:"a" ~epsilon:0.9);
  ignore (Budget.spend b ~label:"too-big" ~epsilon:0.5);
  Alcotest.(check (float 1e-9)) "spent unchanged" 0.9 (Budget.spent b)

let test_budget_replenish () =
  let b = Budget.create ~epsilon_max:1.0 in
  ignore (Budget.spend b ~label:"a" ~epsilon:0.8);
  Budget.replenish b;
  Alcotest.(check (float 1e-9)) "reset" 1.0 (Budget.remaining b);
  Alcotest.(check int) "ledger cleared" 0 (List.length (Budget.ledger b))

let test_budget_bad_params () =
  Alcotest.check_raises "bad max" (Invalid_argument "Budget.create: epsilon_max <= 0")
    (fun () -> ignore (Budget.create ~epsilon_max:0.0));
  let b = Budget.create ~epsilon_max:1.0 in
  Alcotest.check_raises "bad spend" (Invalid_argument "Budget.spend: epsilon <= 0")
    (fun () -> ignore (Budget.spend b ~label:"x" ~epsilon:(-1.0)))

(* ------------------------------------------------------------------ *)
(* Noise circuit                                                       *)
(* ------------------------------------------------------------------ *)

let eval_noise_circuit ~alpha ~max_magnitude ~bits uniform_val sign_val =
  let ubits = Noise_circuit.default_uniform_bits in
  let b = Builder.create () in
  let uniform = Word.inputs b ~bits:ubits in
  let sign = Builder.input b in
  let noise = Noise_circuit.signed_noise b ~alpha ~max_magnitude ~bits ~uniform ~sign in
  let c = Builder.finish b ~outputs:noise in
  let inputs =
    Array.append
      (Array.init ubits (fun i -> (uniform_val lsr i) land 1 = 1))
      [| sign_val |]
  in
  let out = Circuit.eval c inputs in
  let v = ref 0 in
  for i = bits - 1 downto 0 do
    v := (!v lsl 1) lor (if out.(i) then 1 else 0)
  done;
  (* interpret as signed *)
  if !v >= 1 lsl (bits - 1) then !v - (1 lsl bits) else !v

let test_noise_circuit_thresholds_monotone () =
  let ts = Noise_circuit.thresholds ~alpha:0.7 ~max_magnitude:20 ~uniform_bits:32 in
  for i = 1 to 19 do
    Alcotest.(check bool) "monotone" true (ts.(i) >= ts.(i - 1))
  done

let test_noise_circuit_extremes () =
  (* uniform = 0: below every threshold, magnitude 0 regardless of sign. *)
  Alcotest.(check int) "u=0 -> 0" 0 (eval_noise_circuit ~alpha:0.5 ~max_magnitude:7 ~bits:8 0 false);
  (* uniform = all ones: above every threshold, saturates at max. *)
  let all_ones = (1 lsl 32) - 1 in
  Alcotest.(check int) "u=max -> saturate" 7
    (eval_noise_circuit ~alpha:0.5 ~max_magnitude:7 ~bits:8 all_ones false);
  Alcotest.(check int) "sign negates" (-7)
    (eval_noise_circuit ~alpha:0.5 ~max_magnitude:7 ~bits:8 all_ones true)

let test_noise_circuit_distribution () =
  (* Empirical distribution through the actual circuit should match the
     two-sided geometric restricted to magnitudes < max. *)
  let alpha = 0.5 in
  let t = prng () in
  let n = 3000 in
  let counts = Hashtbl.create 32 in
  for _ = 1 to n do
    let u = Prng.bits t 32 in
    let s = Prng.bool t in
    let v = eval_noise_circuit ~alpha ~max_magnitude:15 ~bits:8 u s in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let freq d = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts d)) /. float_of_int n in
  (* P(|Y| = 0) = (1-a)/(1+a); halves go to each sign for |Y| > 0. *)
  let base = (1.0 -. alpha) /. (1.0 +. alpha) in
  Alcotest.(check bool) "P(0)" true (abs_float (freq 0 -. base) < 0.04);
  List.iter
    (fun d ->
      let expected = base *. (alpha ** float_of_int (abs d)) in
      Alcotest.(check bool)
        (Printf.sprintf "P(%d)" d)
        true
        (abs_float (freq d -. expected) < 0.03))
    [ 1; -1; 2; -2 ]

let test_noise_circuit_add_noise () =
  let b = Builder.create () in
  let ubits = Noise_circuit.default_uniform_bits in
  let value = Word.inputs b ~bits:10 in
  let uniform = Word.inputs b ~bits:ubits in
  let sign = Builder.input b in
  let noised = Noise_circuit.add_noise b ~alpha:0.5 ~max_magnitude:7 ~value ~uniform ~sign in
  let c = Builder.finish b ~outputs:noised in
  (* uniform = 0 -> zero noise: output equals input. *)
  let inputs =
    Array.concat
      [
        Array.init 10 (fun i -> (300 lsr i) land 1 = 1);
        Array.make ubits false;
        [| false |];
      ]
  in
  let out = Circuit.eval c inputs in
  let v = ref 0 in
  for i = 9 downto 0 do
    v := (!v lsl 1) lor (if out.(i) then 1 else 0)
  done;
  Alcotest.(check int) "zero noise passthrough" 300 !v

let test_noise_circuit_bad_params () =
  let b = Builder.create () in
  let uniform = Word.inputs b ~bits:32 in
  Alcotest.check_raises "bad alpha" (Invalid_argument "Noise_circuit: alpha out of (0,1)")
    (fun () -> ignore (Noise_circuit.magnitude b ~alpha:1.5 ~max_magnitude:4 ~uniform))

let test_noise_circuit_gate_count_scales () =
  (* The noising circuit is linear in max_magnitude — this is why the
     paper's noising MPC is its largest circuit. *)
  let build m =
    let b = Builder.create () in
    let uniform = Word.inputs b ~bits:32 in
    let w = Noise_circuit.magnitude b ~alpha:0.9 ~max_magnitude:m ~uniform in
    Circuit.and_count (Builder.finish b ~outputs:w)
  in
  let a = build 8 and b = build 64 in
  Alcotest.(check bool) "scales with magnitude" true (b > 4 * a)

let () =
  Alcotest.run "dp"
    [
      ( "laplace",
        [
          Alcotest.test_case "moments" `Quick test_laplace_moments;
          Alcotest.test_case "symmetric" `Quick test_laplace_symmetric;
          Alcotest.test_case "rejects bad scale" `Quick test_laplace_rejects_bad_scale;
          Alcotest.test_case "mechanism centers" `Quick test_laplace_mechanism_centers;
        ] );
      ( "geometric",
        [
          Alcotest.test_case "one-sided pmf" `Quick test_geometric_one_sided_pmf;
          Alcotest.test_case "two-sided pmf" `Quick test_geometric_two_sided_symmetric_pmf;
          Alcotest.test_case "transfer noise even" `Quick test_transfer_noise_is_even;
          Alcotest.test_case "dp ratio" `Slow test_geometric_mechanism_dp_ratio;
          Alcotest.test_case "alpha/epsilon inverse" `Quick test_alpha_epsilon_inverse;
          Alcotest.test_case "cdf" `Quick test_cdf_two_sided;
          Alcotest.test_case "failure probability" `Quick test_failure_probability;
          Alcotest.test_case "max alpha bisection" `Quick test_max_alpha_bisection;
        ] );
      ( "budget",
        [
          Alcotest.test_case "accounting" `Quick test_budget_accounting;
          Alcotest.test_case "rejection free" `Quick test_budget_rejection_does_not_charge;
          Alcotest.test_case "replenish" `Quick test_budget_replenish;
          Alcotest.test_case "bad params" `Quick test_budget_bad_params;
        ] );
      ( "noise-circuit",
        [
          Alcotest.test_case "thresholds monotone" `Quick test_noise_circuit_thresholds_monotone;
          Alcotest.test_case "extremes" `Quick test_noise_circuit_extremes;
          Alcotest.test_case "distribution" `Quick test_noise_circuit_distribution;
          Alcotest.test_case "add noise" `Quick test_noise_circuit_add_noise;
          Alcotest.test_case "bad params" `Quick test_noise_circuit_bad_params;
          Alcotest.test_case "gate count scales" `Quick test_noise_circuit_gate_count_scales;
        ] );
    ]
