module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
open Dstress_risk

let grp = Group.by_name "toy"

(* Small hand-built EN economy: bank 1 owes both neighbors; a cash shock
   at bank 0 propagates. *)
let en_triangle ~shocked =
  {
    Reference.en_n = 3;
    cash = [| (if shocked then 0.0 else 50.0); 10.0; 30.0 |];
    debts = [ (0, 1, 20.0); (1, 2, 25.0); (2, 0, 5.0) ];
  }

(* ------------------------------------------------------------------ *)
(* Eisenberg–Noe reference                                             *)
(* ------------------------------------------------------------------ *)

let test_en_solvent_network_no_shortfall () =
  let r = Reference.eisenberg_noe (en_triangle ~shocked:false) in
  Alcotest.(check (float 1e-6)) "no shortfall" 0.0 r.Reference.en_tds;
  Array.iter
    (fun p -> Alcotest.(check (float 1e-9)) "full payment" 1.0 p)
    r.Reference.prorate

let test_en_shock_creates_shortfall () =
  let r = Reference.eisenberg_noe (en_triangle ~shocked:true) in
  Alcotest.(check bool) "positive TDS" true (r.Reference.en_tds > 0.0);
  Alcotest.(check bool) "bank 0 prorated" true (r.Reference.prorate.(0) < 1.0)

let test_en_prorate_in_unit_interval () =
  let t = Prng.of_int 0xEE in
  for _ = 1 to 20 do
    let topo = Dstress_graphgen.Topology.erdos_renyi t ~n:12 ~avg_degree:3.0 ~max_degree:6 in
    let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
    let shocked = { inst with Reference.cash = Array.map (fun c -> c *. Prng.float t) inst.Reference.cash } in
    let r = Reference.eisenberg_noe shocked in
    Array.iter
      (fun p -> Alcotest.(check bool) "in [0,1]" true (p >= 0.0 && p <= 1.0))
      r.Reference.prorate
  done

let test_en_tds_monotone_in_shock () =
  (* Draining more cash can only increase the shortfall. *)
  let base = en_triangle ~shocked:false in
  let tds cash0 =
    let inst = { base with Reference.cash = [| cash0; 10.0; 30.0 |] } in
    (Reference.eisenberg_noe inst).Reference.en_tds
  in
  let prev = ref (tds 50.0) in
  List.iter
    (fun c ->
      let v = tds c in
      Alcotest.(check bool) "monotone" true (v >= !prev -. 1e-9);
      prev := v)
    [ 40.0; 30.0; 20.0; 10.0; 0.0 ]

let test_en_converges_within_n () =
  let t = Prng.of_int 0xE3 in
  let topo = Dstress_graphgen.Topology.core_periphery t ~core:6 ~periphery:14 () in
  let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
  let shocked = Dstress_graphgen.Banking.shock_en t inst topo Dstress_graphgen.Banking.Cascade in
  let r = Reference.eisenberg_noe shocked in
  Alcotest.(check bool) "converged within n" true
    (r.Reference.en_rounds_to_converge <= 20)

let test_en_validation () =
  let bad inst = Alcotest.(check bool) "rejected" true
    (try Reference.en_validate inst; false with Invalid_argument _ -> true)
  in
  bad { Reference.en_n = 2; cash = [| 1.0 |]; debts = [] };
  bad { Reference.en_n = 2; cash = [| 1.0; 1.0 |]; debts = [ (0, 0, 1.0) ] };
  bad { Reference.en_n = 2; cash = [| 1.0; 1.0 |]; debts = [ (0, 1, -1.0) ] };
  bad { Reference.en_n = 2; cash = [| 1.0; 1.0 |]; debts = [ (0, 1, 1.0); (0, 1, 2.0) ] }

(* ------------------------------------------------------------------ *)
(* Elliott–Golub–Jackson reference                                     *)
(* ------------------------------------------------------------------ *)

let egj_pair ~shock =
  (* Two banks holding 30% of each other; orig_val solves the *healthy*
     fixpoint v = base + 0.3 v_other (v = 70 / 0.7 = 100 each). The shock
     then wipes most of bank 0's primitive assets without touching the
     original valuations or thresholds. *)
  let v0 = 100.0 and v1 = 100.0 in
  {
    Reference.egj_n = 2;
    base_assets = [| (if shock then 20.0 else 70.0); 70.0 |];
    orig_val = [| v0; v1 |];
    threshold = [| 0.8 *. v0; 0.8 *. v1 |];
    penalty = [| 10.0; 10.0 |];
    holdings = [ (0, 1, 0.3); (1, 0, 0.3) ];
  }

let test_egj_healthy_no_failures () =
  (* Unshocked: valuations sit at orig_val, above the 80% thresholds. *)
  let inst = egj_pair ~shock:false in
  let r = Reference.elliott_golub_jackson inst in
  Alcotest.(check (float 1e-3)) "no TDS" 0.0 r.Reference.egj_tds;
  Alcotest.(check bool) "nobody fails" true (Array.for_all not r.Reference.failed)

let test_egj_shock_propagates () =
  let r = Reference.elliott_golub_jackson (egj_pair ~shock:true) in
  Alcotest.(check bool) "TDS positive" true (r.Reference.egj_tds > 0.0);
  Alcotest.(check bool) "bank 0 failed" true r.Reference.failed.(0)

let test_egj_monotone_convergence () =
  (* Hemenway–Khanna: valuations converge monotonically from above. *)
  let t = Prng.of_int 0xE6 in
  for _ = 1 to 10 do
    let topo = Dstress_graphgen.Topology.core_periphery t ~core:5 ~periphery:10 () in
    let inst = Dstress_graphgen.Banking.egj_of_topology t topo () in
    let shocked =
      Dstress_graphgen.Banking.shock_egj t inst topo Dstress_graphgen.Banking.Cascade
    in
    let r = Reference.elliott_golub_jackson shocked in
    Alcotest.(check bool) "monotone" true r.Reference.monotone
  done

let test_egj_penalty_discontinuity () =
  (* Just below threshold, the penalty makes TDS jump discontinuously. *)
  let tds base0 =
    let inst = egj_pair ~shock:false in
    let inst = { inst with Reference.base_assets = [| base0; 70.0 |] } in
    (Reference.elliott_golub_jackson inst).Reference.egj_tds
  in
  let healthy = tds 70.0 in
  let slightly_hit = tds 40.0 in
  Alcotest.(check (float 1e-6)) "healthy" 0.0 healthy;
  (* The penalty (10.0) makes the shortfall strictly exceed the direct
     asset loss effect near the threshold. *)
  Alcotest.(check bool) "jump includes penalty" true (slightly_hit > 5.0)

(* ------------------------------------------------------------------ *)
(* EN vertex program vs reference                                      *)
(* ------------------------------------------------------------------ *)

let l = 12

(* 1/8-dollar units: quantization error stays well below the model-level
   tolerances while everything still fits in 12-bit words. *)
let scale = 0.125

let en_program_tds ?(iterations = 8) inst =
  let graph = En_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = En_program.make ~l ~degree:d ~iterations () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale in
  let units = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  En_program.decode_output ~scale units

let test_en_circuit_matches_reference () =
  List.iter
    (fun shocked ->
      let inst = en_triangle ~shocked in
      let expected = (Reference.eisenberg_noe ~iterations:9 inst).Reference.en_tds in
      let got = en_program_tds inst in
      Alcotest.(check bool)
        (Printf.sprintf "TDS close (shock=%b): ref %.2f vs circuit %.2f" shocked expected got)
        true
        (abs_float (got -. expected) <= 3.0))
    [ false; true ]

let test_en_circuit_matches_reference_random () =
  let t = Prng.of_int 0x1234 in
  for trial = 1 to 5 do
    let topo = Dstress_graphgen.Topology.core_periphery t ~core:4 ~periphery:6 () in
    let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
    let inst = Dstress_graphgen.Banking.shock_en t inst topo Dstress_graphgen.Banking.Cascade in
    let expected = (Reference.eisenberg_noe ~iterations:9 inst).Reference.en_tds in
    let got = en_program_tds inst in
    (* Fixed-point truncation loses at most ~1 unit per bank per round. *)
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: ref %.1f vs circuit %.1f" trial expected got)
      true
      (abs_float (got -. expected) <= 0.05 *. Float.max expected 20.0 +. 10.0)
  done

(* ------------------------------------------------------------------ *)
(* EGJ vertex program vs reference                                     *)
(* ------------------------------------------------------------------ *)

let egj_program_tds ?(iterations = 8) ~frac inst =
  let graph = Egj_program.graph_of_instance inst in
  let d = max 1 (Graph.max_degree graph) in
  let p = Egj_program.make ~l:16 ~frac ~degree:d ~iterations () in
  let states = Egj_program.encode_instance inst ~graph ~l:16 ~frac ~degree:d ~scale:1.0 in
  let units = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  Egj_program.decode_output ~scale:1.0 ~frac units

let test_egj_circuit_matches_reference () =
  List.iter
    (fun shock ->
      let inst = egj_pair ~shock in
      let expected = (Reference.elliott_golub_jackson ~iterations:9 inst).Reference.egj_tds in
      let got = egj_program_tds ~frac:8 inst in
      Alcotest.(check bool)
        (Printf.sprintf "TDS close (shock=%b): ref %.2f vs circuit %.2f" shock expected got)
        true
        (abs_float (got -. expected) <= 8.0))
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Full MPC engine on EN (small instance)                              *)
(* ------------------------------------------------------------------ *)

let test_en_full_engine () =
  let inst = en_triangle ~shocked:true in
  let graph = En_program.graph_of_instance inst in
  let d = Graph.max_degree graph in
  (* Huge epsilon: noise is essentially zero, so the MPC output must
     equal the plaintext circuit output exactly. *)
  let p = En_program.make ~epsilon:60.0 ~sensitivity:1 ~noise_max:2 ~l ~degree:d ~iterations:4 () in
  let states = En_program.encode_instance inst ~graph ~l ~degree:d ~scale in
  let expected = Engine.run_plaintext p ~degree_bound:d ~graph ~initial_states:states in
  let cfg = Engine.default_config grp ~k:2 ~degree_bound:d in
  let report = Engine.run cfg p ~graph ~initial_states:states in
  Alcotest.(check int) "MPC = plaintext" expected report.Engine.output;
  Alcotest.(check int) "no failures" 0 report.Engine.transfer_failures

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let test_sensitivity_bounds () =
  Alcotest.(check (float 1e-9)) "EN 1/r" 10.0 (Sensitivity.eisenberg_noe ~leverage:0.1);
  Alcotest.(check (float 1e-9)) "EGJ 2/r" 20.0
    (Sensitivity.elliott_golub_jackson ~leverage:0.1);
  Alcotest.(check bool) "bad leverage" true
    (try ignore (Sensitivity.eisenberg_noe ~leverage:0.0); false
     with Invalid_argument _ -> true)

let test_sensitivity_units () =
  (* T = $1B granularity, aggregate in $1B units, s = 20 -> 20 units. *)
  Alcotest.(check int) "units" 20
    (Sensitivity.units ~sensitivity:20.0 ~scale_dollars:1e9 ~granularity_dollars:1e9)

let test_paper_budget () =
  let eps_max, eps_q, runs = Sensitivity.paper_epsilon_budget () in
  Alcotest.(check (float 1e-9)) "ln 2" (log 2.0) eps_max;
  Alcotest.(check bool) "three runs fit" true (float_of_int runs *. eps_q <= eps_max)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_en_tds_nonnegative =
  QCheck2.Test.make ~name:"EN TDS nonnegative" ~count:30
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let t = Prng.of_int seed in
      let topo = Dstress_graphgen.Topology.erdos_renyi t ~n:8 ~avg_degree:2.5 ~max_degree:5 in
      let inst = Dstress_graphgen.Banking.en_of_topology t topo () in
      let r = Reference.eisenberg_noe inst in
      r.Reference.en_tds >= 0.0)

let prop_egj_values_bounded =
  QCheck2.Test.make ~name:"EGJ values within [0, orig]" ~count:30
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let t = Prng.of_int seed in
      let topo = Dstress_graphgen.Topology.erdos_renyi t ~n:8 ~avg_degree:2.5 ~max_degree:5 in
      let inst = Dstress_graphgen.Banking.egj_of_topology t topo () in
      let shocked =
        { inst with
          Reference.base_assets =
            Array.map (fun b -> b *. Prng.float t) inst.Reference.base_assets }
      in
      let r = Reference.elliott_golub_jackson shocked in
      Array.for_all (fun v -> v >= 0.0) r.Reference.value
      && Array.for_all2 (fun v o -> v <= o +. 1e-6) r.Reference.value
           inst.Reference.orig_val)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_en_tds_nonnegative; prop_egj_values_bounded ]
  in
  Alcotest.run "risk"
    [
      ( "en-reference",
        [
          Alcotest.test_case "solvent no shortfall" `Quick test_en_solvent_network_no_shortfall;
          Alcotest.test_case "shock creates shortfall" `Quick test_en_shock_creates_shortfall;
          Alcotest.test_case "prorate in [0,1]" `Quick test_en_prorate_in_unit_interval;
          Alcotest.test_case "TDS monotone in shock" `Quick test_en_tds_monotone_in_shock;
          Alcotest.test_case "converges within n" `Quick test_en_converges_within_n;
          Alcotest.test_case "validation" `Quick test_en_validation;
        ] );
      ( "egj-reference",
        [
          Alcotest.test_case "healthy no failures" `Quick test_egj_healthy_no_failures;
          Alcotest.test_case "shock propagates" `Quick test_egj_shock_propagates;
          Alcotest.test_case "monotone convergence" `Quick test_egj_monotone_convergence;
          Alcotest.test_case "penalty discontinuity" `Quick test_egj_penalty_discontinuity;
        ] );
      ( "circuits",
        [
          Alcotest.test_case "EN circuit vs reference" `Quick test_en_circuit_matches_reference;
          Alcotest.test_case "EN circuit random instances" `Quick
            test_en_circuit_matches_reference_random;
          Alcotest.test_case "EGJ circuit vs reference" `Quick test_egj_circuit_matches_reference;
        ] );
      ( "engine",
        [ Alcotest.test_case "EN under full MPC" `Slow test_en_full_engine ] );
      ( "sensitivity",
        [
          Alcotest.test_case "bounds" `Quick test_sensitivity_bounds;
          Alcotest.test_case "units" `Quick test_sensitivity_units;
          Alcotest.test_case "paper budget" `Quick test_paper_budget;
        ] );
      ("properties", qsuite);
    ]
