lib/circuit/builder.ml: Array Circuit Hashtbl List
