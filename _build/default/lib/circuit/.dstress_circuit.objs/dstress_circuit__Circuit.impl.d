lib/circuit/circuit.ml: Array Format Printf
