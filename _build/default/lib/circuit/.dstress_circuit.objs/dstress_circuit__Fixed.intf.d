lib/circuit/fixed.mli: Builder Word
