lib/circuit/fixed.ml: Float Word
