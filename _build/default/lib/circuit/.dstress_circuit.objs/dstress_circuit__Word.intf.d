lib/circuit/word.mli: Builder
