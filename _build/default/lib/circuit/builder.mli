(** Circuit construction with on-the-fly simplification.

    The builder applies constant folding, algebraic identities
    ([x XOR x = 0], [x AND x = x], double negation) and structural
    hash-consing as gates are emitted. This matters beyond tidiness: the
    risk-model circuits embed many constant operands (degree bounds,
    thresholds, public scale factors), and folding them keeps the AND
    count — hence the MPC cost — close to what a hand-optimized circuit
    would achieve. *)

type t
type wire = Circuit.wire

val create : unit -> t

val input : t -> wire
(** Allocates the next input position. Inputs are numbered in allocation
    order. *)

val inputs : t -> int -> wire array

val const : t -> bool -> wire
val bnot : t -> wire -> wire
val bxor : t -> wire -> wire -> wire
val band : t -> wire -> wire -> wire

val bor : t -> wire -> wire -> wire
(** Derived: [a OR b = NOT (NOT a AND NOT b)] — one AND gate. *)

val bnand : t -> wire -> wire -> wire
val bxnor : t -> wire -> wire -> wire

val mux : t -> wire -> wire -> wire -> wire
(** [mux t sel a b] is [if sel then a else b] — one AND gate. *)

val num_inputs : t -> int

val finish : t -> outputs:wire array -> Circuit.t
(** Seals the builder. Dead gates (not reachable from the outputs) are
    removed. The builder must not be used afterwards.
    Raises [Invalid_argument] on a second call. *)
