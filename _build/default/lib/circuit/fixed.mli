(** Unsigned fixed-point arithmetic on top of {!Word}.

    The Elliott–Golub–Jackson circuit works with fractions — equity shares,
    valuation discounts — so values are scaled integers with [frac_bits]
    binary places. A configuration fixes the layout; all circuit values
    under one configuration share a width of [int_bits + frac_bits]. *)

type cfg = { int_bits : int; frac_bits : int }

val width : cfg -> int

val encode : cfg -> float -> int
(** Nearest scaled integer, clamped to the representable range
    [\[0, 2^width - 1\]]. *)

val decode : cfg -> int -> float

val constant : Builder.t -> cfg -> float -> Word.t
val one : Builder.t -> cfg -> Word.t
(** The fixed-point constant 1.0. *)

val inputs : Builder.t -> cfg -> Word.t

val add : Builder.t -> cfg -> Word.t -> Word.t -> Word.t
val saturating_sub : Builder.t -> cfg -> Word.t -> Word.t -> Word.t

val mul : Builder.t -> cfg -> Word.t -> Word.t -> Word.t
(** [(a * b) >> frac_bits], truncated to the configuration width. *)

val div : Builder.t -> cfg -> Word.t -> Word.t -> Word.t
(** [(a << frac_bits) / b], truncated to the configuration width. *)

val clamp_to_one : Builder.t -> cfg -> Word.t -> Word.t
(** [min x 1.0] — keeps ratios like prorate factors inside [\[0,1\]]. *)
