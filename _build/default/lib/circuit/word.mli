(** Multi-bit arithmetic gadgets over the circuit builder.

    A word is a little-endian array of wires (bit 0 first), interpreted as
    an unsigned integer unless a function says otherwise. All gadgets are
    built from the AND/XOR/NOT basis with ripple-carry structure — the
    right trade-off for GMW, where gate *count* is the communication cost
    and the paper's circuits are small (L = 12..32 bits). *)

type t = Builder.wire array

val width : t -> int

val constant : Builder.t -> bits:int -> int -> t
(** Two's-complement encoding of a (possibly negative) constant. *)

val inputs : Builder.t -> bits:int -> t
(** Allocates [bits] fresh input wires. *)

val zero_extend : Builder.t -> t -> bits:int -> t
val truncate : t -> bits:int -> t
(** [truncate] keeps the low [bits] bits. Raises [Invalid_argument] if the
    word is shorter. *)

val shift_left_const : Builder.t -> t -> int -> t
(** Logical shift by a constant, width preserved. *)

val shift_right_const : Builder.t -> t -> int -> t

val add : Builder.t -> t -> t -> t
(** Modular addition (wraps); widths must match. *)

val add_with_carry : Builder.t -> t -> t -> t * Builder.wire

val sub : Builder.t -> t -> t -> t
(** Modular subtraction (wraps). *)

val sub_with_borrow : Builder.t -> t -> t -> t * Builder.wire
(** The borrow wire is 1 iff [a < b] (unsigned). *)

val saturating_sub : Builder.t -> t -> t -> t
(** [max (a - b) 0] — the "shortfall" primitive of the risk circuits. *)

val negate : Builder.t -> t -> t
(** Two's-complement negation. *)

val eq : Builder.t -> t -> t -> Builder.wire
val is_zero : Builder.t -> t -> Builder.wire
val lt : Builder.t -> t -> t -> Builder.wire
(** Unsigned comparison. *)

val le : Builder.t -> t -> t -> Builder.wire
val gt : Builder.t -> t -> t -> Builder.wire
val ge : Builder.t -> t -> t -> Builder.wire

val mux : Builder.t -> Builder.wire -> t -> t -> t
(** [mux b sel a c] selects [a] when [sel] is 1. *)

val min : Builder.t -> t -> t -> t
val max : Builder.t -> t -> t -> t

val mul : Builder.t -> t -> t -> t
(** Full product: width is the sum of the operand widths. *)

val mul_truncated : Builder.t -> t -> t -> bits:int -> t
(** Product truncated to [bits] bits (cheaper than [mul] + [truncate]
    because high partial products are never built). *)

val divmod : Builder.t -> t -> t -> t * t
(** Unsigned restoring division: [(quotient, remainder)], quotient has the
    dividend's width and remainder the divisor's. Division by zero yields
    an all-ones quotient and the dividend's low bits as remainder
    (callers in the risk circuits guard against zero divisors). *)

val logand : Builder.t -> t -> t -> t
val logxor : Builder.t -> t -> t -> t
val lognot : Builder.t -> t -> t

val sum : Builder.t -> bits:int -> t list -> t
(** Sum of a non-empty list, all operands zero-extended to [bits] bits,
    wrapping modulo 2^bits. *)
