type cfg = { int_bits : int; frac_bits : int }

let width cfg = cfg.int_bits + cfg.frac_bits

let encode cfg v =
  let scaled = v *. float_of_int (1 lsl cfg.frac_bits) in
  let max_val = (1 lsl width cfg) - 1 in
  let r = int_of_float (Float.round scaled) in
  if r < 0 then 0 else if r > max_val then max_val else r

let decode cfg v = float_of_int v /. float_of_int (1 lsl cfg.frac_bits)

let constant b cfg v = Word.constant b ~bits:(width cfg) (encode cfg v)

let one b cfg = constant b cfg 1.0

let inputs b cfg = Word.inputs b ~bits:(width cfg)

let add b _cfg = Word.add b

let saturating_sub b _cfg = Word.saturating_sub b

let mul b cfg x y =
  let product = Word.mul b x y in
  Word.truncate (Word.shift_right_const b product cfg.frac_bits) ~bits:(width cfg)

let div b cfg x y =
  let w = width cfg in
  (* Shift the dividend left by frac_bits before dividing so the quotient
     lands back on the fixed-point grid. *)
  let wide = Word.shift_left_const b (Word.zero_extend b x ~bits:(w + cfg.frac_bits)) cfg.frac_bits in
  let q, _ = Word.divmod b wide y in
  Word.truncate q ~bits:w

let clamp_to_one b cfg x = Word.min b x (one b cfg)
