type t = Builder.wire array

let width = Array.length

let constant b ~bits v =
  Array.init bits (fun i -> Builder.const b ((v asr i) land 1 = 1))

let inputs b ~bits = Builder.inputs b bits

let zero_extend b w ~bits =
  if bits < Array.length w then invalid_arg "Word.zero_extend: narrower target";
  Array.init bits (fun i -> if i < Array.length w then w.(i) else Builder.const b false)

let truncate w ~bits =
  if bits > Array.length w then invalid_arg "Word.truncate: wider target";
  Array.sub w 0 bits

let shift_left_const b w k =
  let n = Array.length w in
  Array.init n (fun i -> if i < k then Builder.const b false else w.(i - k))

let shift_right_const b w k =
  let n = Array.length w in
  Array.init n (fun i -> if i + k < n then w.(i + k) else Builder.const b false)

let check_widths name a c =
  if Array.length a <> Array.length c then invalid_arg ("Word." ^ name ^ ": width mismatch")

(* Ripple-carry adder: 1 AND per bit for the carry via the standard
   majority decomposition carry' = (a AND b) XOR (c AND (a XOR b)) — the
   builder folds the constant-operand cases for free. *)
let add_with_carry b x y =
  check_widths "add" x y;
  let n = Array.length x in
  let out = Array.make n (Builder.const b false) in
  let carry = ref (Builder.const b false) in
  for i = 0 to n - 1 do
    let axb = Builder.bxor b x.(i) y.(i) in
    out.(i) <- Builder.bxor b axb !carry;
    carry := Builder.bxor b (Builder.band b x.(i) y.(i)) (Builder.band b !carry axb)
  done;
  (out, !carry)

let add b x y = fst (add_with_carry b x y)

let lognot b w = Array.map (Builder.bnot b) w

(* a - b = a + NOT b + 1; borrow = NOT carry_out. *)
let sub_with_borrow b x y =
  check_widths "sub" x y;
  let n = Array.length x in
  let out = Array.make n (Builder.const b false) in
  let carry = ref (Builder.const b true) in
  for i = 0 to n - 1 do
    let ny = Builder.bnot b y.(i) in
    let axb = Builder.bxor b x.(i) ny in
    out.(i) <- Builder.bxor b axb !carry;
    carry := Builder.bxor b (Builder.band b x.(i) ny) (Builder.band b !carry axb)
  done;
  (out, Builder.bnot b !carry)

let sub b x y = fst (sub_with_borrow b x y)

let negate b w = sub b (Array.map (fun _ -> Builder.const b false) w) w

let mux b sel x y =
  check_widths "mux" x y;
  Array.init (Array.length x) (fun i -> Builder.mux b sel x.(i) y.(i))

let saturating_sub b x y =
  let diff, borrow = sub_with_borrow b x y in
  let zero = Array.map (fun _ -> Builder.const b false) x in
  mux b borrow zero diff

let eq b x y =
  check_widths "eq" x y;
  let diff = Array.mapi (fun i xi -> Builder.bxor b xi y.(i)) x in
  (* NOT (OR of diffs) = AND of NOTs *)
  Array.fold_left (fun acc d -> Builder.band b acc (Builder.bnot b d)) (Builder.const b true) diff

let is_zero b w =
  Array.fold_left (fun acc bit -> Builder.band b acc (Builder.bnot b bit)) (Builder.const b true) w

let lt b x y = snd (sub_with_borrow b x y)
let ge b x y = Builder.bnot b (lt b x y)
let gt b x y = lt b y x
let le b x y = Builder.bnot b (lt b y x)

let min b x y = mux b (lt b x y) x y
let max b x y = mux b (lt b x y) y x

(* Shift-and-add schoolbook multiplier. *)
let mul b x y =
  let nx = Array.length x and ny = Array.length y in
  let bits = nx + ny in
  let acc = ref (constant b ~bits 0) in
  for i = 0 to ny - 1 do
    let partial =
      Array.init bits (fun j ->
          if j < i || j - i >= nx then Builder.const b false
          else Builder.band b x.(j - i) y.(i))
    in
    acc := add b !acc partial
  done;
  !acc

let mul_truncated b x y ~bits =
  let nx = Array.length x and ny = Array.length y in
  let acc = ref (constant b ~bits 0) in
  for i = 0 to Stdlib.min (ny - 1) (bits - 1) do
    let partial =
      Array.init bits (fun j ->
          if j < i || j - i >= nx then Builder.const b false
          else Builder.band b x.(j - i) y.(i))
    in
    acc := add b !acc partial
  done;
  !acc

(* Restoring division, MSB-first. The running remainder has one guard bit
   beyond the divisor width. *)
let divmod b dividend divisor =
  let n = Array.length dividend and m = Array.length divisor in
  let rw = m + 1 in
  let divisor_ext = zero_extend b divisor ~bits:rw in
  let quotient = Array.make n (Builder.const b false) in
  let remainder = ref (constant b ~bits:rw 0) in
  for i = n - 1 downto 0 do
    (* R = (R << 1) | dividend_i *)
    let shifted =
      Array.init rw (fun j -> if j = 0 then dividend.(i) else !remainder.(j - 1))
    in
    let diff, borrow = sub_with_borrow b shifted divisor_ext in
    let fits = Builder.bnot b borrow in
    quotient.(i) <- fits;
    remainder := mux b fits diff shifted
  done;
  (quotient, truncate !remainder ~bits:m)

let logand b x y =
  check_widths "logand" x y;
  Array.mapi (fun i xi -> Builder.band b xi y.(i)) x

let logxor b x y =
  check_widths "logxor" x y;
  Array.mapi (fun i xi -> Builder.bxor b xi y.(i)) x

let sum b ~bits = function
  | [] -> invalid_arg "Word.sum: empty"
  | first :: rest ->
      List.fold_left
        (fun acc w -> add b acc (zero_extend b w ~bits))
        (zero_extend b first ~bits)
        rest
