type wire = Circuit.wire

type t = {
  mutable gates : Circuit.gate array;
  mutable len : int;
  mutable num_inputs : int;
  cache : (Circuit.gate, wire) Hashtbl.t; (* structural hash-consing *)
  mutable sealed : bool;
}

let create () =
  { gates = Array.make 64 (Circuit.Const false); len = 0; num_inputs = 0;
    cache = Hashtbl.create 256; sealed = false }

let push t gate =
  if t.sealed then invalid_arg "Builder: already finished";
  match Hashtbl.find_opt t.cache gate with
  | Some w -> w
  | None ->
      if t.len = Array.length t.gates then begin
        let bigger = Array.make (2 * t.len) (Circuit.Const false) in
        Array.blit t.gates 0 bigger 0 t.len;
        t.gates <- bigger
      end;
      t.gates.(t.len) <- gate;
      let w = t.len in
      t.len <- t.len + 1;
      Hashtbl.replace t.cache gate w;
      w

let gate_of t w = t.gates.(w)

let input t =
  let k = t.num_inputs in
  t.num_inputs <- k + 1;
  (* Inputs are never hash-consed together: each allocation is distinct. *)
  if t.sealed then invalid_arg "Builder: already finished";
  if t.len = Array.length t.gates then begin
    let bigger = Array.make (2 * t.len) (Circuit.Const false) in
    Array.blit t.gates 0 bigger 0 t.len;
    t.gates <- bigger
  end;
  t.gates.(t.len) <- Circuit.Input k;
  let w = t.len in
  t.len <- t.len + 1;
  w

let inputs t n = Array.init n (fun _ -> input t)

let const t b = push t (Circuit.Const b)

let const_of t w =
  match gate_of t w with Circuit.Const b -> Some b | _ -> None

let bnot t a =
  match gate_of t a with
  | Circuit.Const b -> const t (not b)
  | Circuit.Not inner -> inner
  | Circuit.Input _ | Circuit.Xor _ | Circuit.And _ -> push t (Circuit.Not a)

let bxor t a b =
  if a = b then const t false
  else
    match (const_of t a, const_of t b) with
    | Some ca, Some cb -> const t (ca <> cb)
    | Some false, None -> b
    | None, Some false -> a
    | Some true, None -> bnot t b
    | None, Some true -> bnot t a
    | None, None ->
        (* Canonical operand order maximizes hash-consing hits. *)
        let a, b = if a <= b then (a, b) else (b, a) in
        push t (Circuit.Xor (a, b))

let band t a b =
  if a = b then a
  else
    match (const_of t a, const_of t b) with
    | Some ca, Some cb -> const t (ca && cb)
    | Some false, None | None, Some false -> const t false
    | Some true, None -> b
    | None, Some true -> a
    | None, None ->
        let a, b = if a <= b then (a, b) else (b, a) in
        push t (Circuit.And (a, b))

let bor t a b = bnot t (band t (bnot t a) (bnot t b))

let bnand t a b = bnot t (band t a b)

let bxnor t a b = bnot t (bxor t a b)

(* if sel then a else b  =  b XOR (sel AND (a XOR b)) *)
let mux t sel a b = bxor t b (band t sel (bxor t a b))

let num_inputs t = t.num_inputs

let finish t ~outputs =
  if t.sealed then invalid_arg "Builder.finish: already finished";
  t.sealed <- true;
  let gates = Array.sub t.gates 0 t.len in
  (* Dead-gate elimination: keep only gates reachable from the outputs
     (plus all Input gates, which fix input positions). *)
  let live = Array.make t.len false in
  let rec mark w =
    if not live.(w) then begin
      live.(w) <- true;
      match gates.(w) with
      | Circuit.Input _ | Circuit.Const _ -> ()
      | Circuit.Not a -> mark a
      | Circuit.Xor (a, b) | Circuit.And (a, b) ->
          mark a;
          mark b
    end
  in
  Array.iter mark outputs;
  Array.iteri (fun i g -> match g with Circuit.Input _ -> live.(i) <- true | _ -> ()) gates;
  let remap = Array.make t.len (-1) in
  let kept = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i g ->
      if live.(i) then begin
        remap.(i) <- !next;
        incr next;
        kept := g :: !kept
      end)
    gates;
  let remap_gate = function
    | Circuit.Input _ | Circuit.Const _ as g -> g
    | Circuit.Not a -> Circuit.Not remap.(a)
    | Circuit.Xor (a, b) -> Circuit.Xor (remap.(a), remap.(b))
    | Circuit.And (a, b) -> Circuit.And (remap.(a), remap.(b))
  in
  let final = Array.of_list (List.rev_map remap_gate !kept) in
  Circuit.make ~gates:final ~num_inputs:t.num_inputs
    ~outputs:(Array.map (fun w -> remap.(w)) outputs)
