(** Boolean circuit intermediate representation.

    DStress executes every vertex update function, the aggregation function
    and the noising step as boolean circuits under GMW (§3.1, §3.6), so the
    circuit is the lingua franca between the algorithm layer ({!Dstress_risk})
    and the MPC engine ({!Dstress_mpc}).

    A circuit is an array of gates in topological order (a gate only refers
    to earlier wires). The gate basis is [{Input, Const, Not, Xor, And}] —
    XOR and NOT are free in GMW; only AND gates cost communication, which
    is why {!and_count} and {!and_depth} are the two numbers the cost model
    cares about. *)

type wire = int
(** Index of the gate producing the value. *)

type gate =
  | Input of int  (** [Input k] reads the [k]-th circuit input. *)
  | Const of bool
  | Not of wire
  | Xor of wire * wire
  | And of wire * wire

type t = private {
  gates : gate array;
  num_inputs : int;
  outputs : wire array;
}

val make : gates:gate array -> num_inputs:int -> outputs:wire array -> t
(** Validates topological order, wire ranges and input indices.
    Raises [Invalid_argument] on malformed circuits. *)

val eval : t -> bool array -> bool array
(** Plaintext evaluation; the semantics oracle the MPC engine is tested
    against. Raises [Invalid_argument] if the input length is wrong. *)

val num_gates : t -> int
val and_count : t -> int
val xor_count : t -> int
val not_count : t -> int

val and_depth : t -> int
(** Number of AND layers on the critical path = GMW round count. *)

val and_levels : t -> int array
(** Per-gate AND level: level 0 gates depend on no AND gate; an AND gate at
    level [l] can be evaluated in GMW round [l]. The array is indexed by
    wire. *)

type stats = {
  inputs : int;
  gates : int;
  ands : int;
  xors : int;
  nots : int;
  depth : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
