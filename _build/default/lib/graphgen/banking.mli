(** Balance-sheet generators: dress a {!Topology} up as an Eisenberg–Noe
    or Elliott–Golub–Jackson economy, and apply stress scenarios.

    The two Appendix-C scenarios are reproduced exactly as described: a
    50-bank two-tier network where a shock to regional banks is either
    absorbed by the core or takes the whole core down in a cascade. Core
    banks get large balance sheets, peripheral banks small ones; a shock
    removes liquid assets from chosen banks before the stress test runs. *)

type shock = Absorbed | Cascade

val en_of_topology :
  Dstress_util.Prng.t ->
  Topology.t ->
  ?core_cash:float ->
  ?peripheral_cash:float ->
  ?core_debt:float ->
  ?peripheral_debt:float ->
  unit ->
  Dstress_risk.Reference.en_instance
(** Every undirected link becomes two opposite debts (core scale between
    core banks, peripheral scale otherwise). Defaults: core cash 120,
    peripheral cash 14, core debt 30, peripheral debt 8. *)

val egj_of_topology :
  Dstress_util.Prng.t ->
  Topology.t ->
  ?core_assets:float ->
  ?peripheral_assets:float ->
  ?cross_share:float ->
  ?threshold_ratio:float ->
  ?penalty_ratio:float ->
  unit ->
  Dstress_risk.Reference.egj_instance
(** Every undirected link becomes mutual equity cross-holdings of
    [cross_share] (default 0.05). [orig_val] is set consistently to the
    no-stress fixpoint value (base plus stakes at full value); thresholds
    and penalties are ratios of it (defaults 0.85 and 0.2). *)

val shock_en :
  Dstress_util.Prng.t -> Dstress_risk.Reference.en_instance -> Topology.t -> shock ->
  Dstress_risk.Reference.en_instance
(** [Absorbed]: wipe the cash of a handful of peripheral banks.
    [Cascade]: additionally drain most core liquidity, so shortfalls
    propagate through the dense core. *)

val shock_egj :
  Dstress_util.Prng.t -> Dstress_risk.Reference.egj_instance -> Topology.t -> shock ->
  Dstress_risk.Reference.egj_instance

val appendix_c_network :
  Dstress_util.Prng.t -> shock -> Dstress_risk.Reference.en_instance * Topology.t
(** The 50-bank (10 core + 40 peripheral) Appendix-C experiment, shocked. *)
