module Prng = Dstress_util.Prng
module Reference = Dstress_risk.Reference

type shock = Absorbed | Cascade

let is_core topo i = List.mem i topo.Topology.core

let en_of_topology prng topo ?(core_cash = 120.0) ?(peripheral_cash = 14.0)
    ?(core_debt = 30.0) ?(peripheral_debt = 8.0) () =
  let n = topo.Topology.n in
  let jitter () = 0.85 +. (0.3 *. Prng.float prng) in
  let cash =
    Array.init n (fun i ->
        (if is_core topo i then core_cash else peripheral_cash) *. jitter ())
  in
  (* Between two core banks, debts are symmetric and large. On a
     core-periphery link the regional bank is a net borrower: it owes the
     full peripheral amount while the core bank owes back only half —
     which is what makes a drained regional bank actually insolvent. *)
  let debts =
    List.concat_map
      (fun (a, b) ->
        if is_core topo a && is_core topo b then
          [ (a, b, core_debt *. jitter ()); (b, a, core_debt *. jitter ()) ]
        else begin
          let peripheral, core = if is_core topo a then (b, a) else (a, b) in
          [
            (peripheral, core, peripheral_debt *. jitter ());
            (core, peripheral, 0.5 *. peripheral_debt *. jitter ());
          ]
        end)
      topo.Topology.links
  in
  { Reference.en_n = n; cash; debts }

let egj_of_topology prng topo ?(core_assets = 120.0) ?(peripheral_assets = 14.0)
    ?(cross_share = 0.05) ?(threshold_ratio = 0.85) ?(penalty_ratio = 0.2) () =
  let n = topo.Topology.n in
  let jitter () = 0.85 +. (0.3 *. Prng.float prng) in
  let base =
    Array.init n (fun i ->
        (if is_core topo i then core_assets else peripheral_assets) *. jitter ())
  in
  let holdings =
    List.concat_map
      (fun (a, b) -> [ (a, b, cross_share); (b, a, cross_share) ])
      topo.Topology.links
  in
  (* orig_val is the healthy fixpoint: with zero discounts, a bank is
     worth its base assets plus its stakes at issuers' original values.
     Solve by a short fixpoint iteration on v = base + S v. *)
  let v = Array.copy base in
  for _ = 1 to 60 do
    let fresh = Array.copy base in
    List.iter (fun (h, iss, s) -> fresh.(h) <- fresh.(h) +. (s *. v.(iss))) holdings;
    Array.blit fresh 0 v 0 n
  done;
  {
    Reference.egj_n = n;
    base_assets = base;
    orig_val = v;
    threshold = Array.map (fun x -> threshold_ratio *. x) v;
    penalty = Array.map (fun x -> penalty_ratio *. x) v;
    holdings;
  }

let peripheral_sample prng topo count =
  let periphery =
    List.filter (fun i -> not (is_core topo i)) (List.init topo.Topology.n (fun i -> i))
  in
  let arr = Array.of_list periphery in
  Prng.shuffle prng arr;
  Array.to_list (Array.sub arr 0 (min count (Array.length arr)))

let shock_en prng inst topo = function
  | Absorbed ->
      let hit = peripheral_sample prng topo 5 in
      let cash = Array.copy inst.Reference.cash in
      List.iter (fun i -> cash.(i) <- 0.0) hit;
      { inst with Reference.cash = cash }
  | Cascade ->
      (* A systemic event: every regional bank loses its liquidity and the
         core's buffers are almost gone, so the unpaid periphery inflows
         push core banks under water and the shortfall amplifies through
         the densely connected center. *)
      let cash = Array.copy inst.Reference.cash in
      Array.iteri (fun i _ -> if not (is_core topo i) then cash.(i) <- 0.0) cash;
      List.iter (fun c -> cash.(c) <- cash.(c) *. 0.02) topo.Topology.core;
      { inst with Reference.cash = cash }

let shock_egj prng inst topo = function
  | Absorbed ->
      let hit = peripheral_sample prng topo 5 in
      let base = Array.copy inst.Reference.base_assets in
      List.iter (fun i -> base.(i) <- base.(i) *. 0.2) hit;
      { inst with Reference.base_assets = base }
  | Cascade ->
      let hit = peripheral_sample prng topo 12 in
      let base = Array.copy inst.Reference.base_assets in
      List.iter (fun i -> base.(i) <- base.(i) *. 0.1) hit;
      List.iter (fun c -> base.(c) <- base.(c) *. 0.35) topo.Topology.core;
      { inst with Reference.base_assets = base }

let appendix_c_network prng shock =
  let topo = Topology.core_periphery prng ~core:10 ~periphery:40 () in
  let inst = en_of_topology prng topo () in
  (shock_en prng inst topo shock, topo)
