lib/graphgen/topology.mli: Dstress_util
