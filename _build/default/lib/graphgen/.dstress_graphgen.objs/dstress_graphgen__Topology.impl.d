lib/graphgen/topology.ml: Array Dstress_util Hashtbl List
