lib/graphgen/banking.ml: Array Dstress_risk Dstress_util List Topology
