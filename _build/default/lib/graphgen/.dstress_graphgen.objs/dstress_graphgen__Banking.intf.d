lib/graphgen/banking.mli: Dstress_risk Dstress_util Topology
