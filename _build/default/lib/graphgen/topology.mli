(** Synthetic interbank network topologies.

    No public interbank dataset exists (the privacy problem DStress solves
    is precisely why), so the paper — following the empirical literature
    it cites (Cocco et al.) — evaluates on synthetic two-tier networks.
    This module generates the three families used across the test suite
    and benchmarks: core–periphery (Appendix C), scale-free preferential
    attachment, and Erdős–Rényi. All generators respect an explicit
    degree cap, matching the system's public degree bound D. *)

type t = {
  n : int;
  links : (int * int) list;  (** undirected, each with [fst < snd] *)
  core : int list;  (** core members for two-tier families, else [] *)
}

val degree_table : t -> int array

val max_degree : t -> int

val core_periphery :
  Dstress_util.Prng.t ->
  core:int ->
  periphery:int ->
  ?core_density:float ->
  ?periphery_links:int ->
  unit ->
  t
(** Appendix C's two-tier structure: a densely connected core
    ([core_density] of all core pairs linked, default 0.9) and peripheral
    banks each linked to 1..[periphery_links] core banks (default 2). *)

val scale_free :
  Dstress_util.Prng.t -> n:int -> attach:int -> max_degree:int -> t
(** Barabási–Albert preferential attachment: each new vertex links to
    [attach] existing vertices with probability proportional to degree,
    skipping saturated vertices. *)

val erdos_renyi : Dstress_util.Prng.t -> n:int -> avg_degree:float -> max_degree:int -> t
(** Uniform random links with expected degree [avg_degree], capped. *)

val ring : n:int -> t
(** Deterministic cycle — handy for tests and minimal examples. *)
