module Prng = Dstress_util.Prng

type t = { n : int; links : (int * int) list; core : int list }

let degree_table t =
  let deg = Array.make t.n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    t.links;
  deg

let max_degree t = Array.fold_left max 0 (degree_table t)

(* Link accumulator with dedup and degree capping. *)
module Acc = struct
  type acc = {
    cap : int;
    deg : int array;
    seen : (int * int, unit) Hashtbl.t;
    mutable links : (int * int) list;
  }

  let create n cap = { cap; deg = Array.make n 0; seen = Hashtbl.create 64; links = [] }

  let norm a b = if a < b then (a, b) else (b, a)

  let can_add t a b =
    a <> b
    && (not (Hashtbl.mem t.seen (norm a b)))
    && t.deg.(a) < t.cap
    && t.deg.(b) < t.cap

  let add t a b =
    if can_add t a b then begin
      Hashtbl.replace t.seen (norm a b) ();
      t.deg.(a) <- t.deg.(a) + 1;
      t.deg.(b) <- t.deg.(b) + 1;
      t.links <- norm a b :: t.links;
      true
    end
    else false

  let links t = List.sort compare t.links
end

let core_periphery prng ~core ~periphery ?(core_density = 0.9) ?(periphery_links = 2) () =
  if core < 2 || periphery < 0 then invalid_arg "Topology.core_periphery";
  let n = core + periphery in
  let acc = Acc.create n max_int in
  (* Dense core: banks 0 .. core-1. *)
  for a = 0 to core - 1 do
    for b = a + 1 to core - 1 do
      if Prng.float prng < core_density then ignore (Acc.add acc a b)
    done
  done;
  (* Each peripheral bank attaches to one or two distinct core banks. *)
  for p = core to n - 1 do
    let count = 1 + Prng.int prng periphery_links in
    let targets = Prng.sample_without_replacement prng (min count core) core in
    List.iter (fun c -> ignore (Acc.add acc p c)) targets
  done;
  { n; links = Acc.links acc; core = List.init core (fun i -> i) }

let scale_free prng ~n ~attach ~max_degree =
  if n < attach + 1 || attach < 1 then invalid_arg "Topology.scale_free";
  let acc = Acc.create n max_degree in
  (* Seed clique on the first attach+1 vertices. *)
  for a = 0 to attach do
    for b = a + 1 to attach do
      ignore (Acc.add acc a b)
    done
  done;
  (* Degree-proportional sampling via the repeated-endpoints trick. *)
  let endpoints = ref [] in
  List.iter
    (fun (a, b) -> endpoints := a :: b :: !endpoints)
    acc.Acc.links;
  for v = attach + 1 to n - 1 do
    let added = ref 0 in
    let attempts = ref 0 in
    while !added < attach && !attempts < 50 * attach do
      incr attempts;
      let pool = Array.of_list !endpoints in
      let target = if Array.length pool = 0 then Prng.int prng v else Prng.pick prng pool in
      if Acc.add acc v target then begin
        incr added;
        endpoints := v :: target :: !endpoints
      end
    done
  done;
  { n; links = Acc.links acc; core = [] }

let erdos_renyi prng ~n ~avg_degree ~max_degree =
  if n < 2 then invalid_arg "Topology.erdos_renyi";
  let p = avg_degree /. float_of_int (n - 1) in
  let acc = Acc.create n max_degree in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Prng.float prng < p then ignore (Acc.add acc a b)
    done
  done;
  { n; links = Acc.links acc; core = [] }

let ring ~n =
  if n < 3 then invalid_arg "Topology.ring";
  let links = List.init n (fun i -> Acc.norm i ((i + 1) mod n)) in
  { n; links = List.sort compare links; core = [] }
