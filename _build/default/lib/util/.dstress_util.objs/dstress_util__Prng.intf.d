lib/util/prng.mli:
