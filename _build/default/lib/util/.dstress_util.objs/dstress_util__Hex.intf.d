lib/util/hex.mli:
