lib/util/stats.mli:
