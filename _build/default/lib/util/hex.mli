(** Hexadecimal encoding of byte strings. *)

val encode : bytes -> string
(** Lowercase hex, two characters per byte. *)

val decode : string -> bytes
(** Inverse of [encode]; accepts upper- and lowercase digits.
    Raises [Invalid_argument] on odd length or non-hex characters. *)
