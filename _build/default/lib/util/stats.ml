let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.0

let linear_fit pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: zero x-variance";
  let b = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let a = (!sy -. (b *. !sx)) /. nf in
  (a, b)

let r_squared pts ~a ~b =
  let ys = Array.map snd pts in
  let ybar = mean ys in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. ybar) ** 2.0)) 0.0 ys in
  let ss_res =
    Array.fold_left (fun acc (x, y) -> acc +. ((y -. (a +. (b *. x))) ** 2.0)) 0.0 pts
  in
  if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)

let histogram xs ~bins ~lo ~hi =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if hi <= lo then invalid_arg "Stats.histogram: hi <= lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let b = int_of_float (floor ((x -. lo) /. width)) in
      let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1)
    xs;
  counts
