(** Small statistics toolkit for benchmark reporting and the cost model. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; 0 for arrays of length < 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

val linear_fit : (float * float) array -> float * float
(** Least-squares fit [y = a + b*x]; returns [(a, b)]. Raises
    [Invalid_argument] with fewer than two points or zero x-variance. *)

val r_squared : (float * float) array -> a:float -> b:float -> float
(** Coefficient of determination of the fit [y = a + b*x] on the points. *)

val histogram : float array -> bins:int -> lo:float -> hi:float -> int array
(** Counts per equal-width bin; values outside [\[lo,hi)] are clamped to the
    first/last bin. Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)
