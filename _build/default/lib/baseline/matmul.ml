module Bitvec = Dstress_util.Bitvec
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Circuit = Dstress_circuit.Circuit
module Gmw = Dstress_mpc.Gmw
module Sharing = Dstress_mpc.Sharing
module Traffic = Dstress_mpc.Traffic

let circuit ~n ~bits =
  let b = Builder.create () in
  let matrix () = Array.init (n * n) (fun _ -> Word.inputs b ~bits) in
  let a = matrix () and bm = matrix () in
  let out = Array.make (n * n) [||] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let terms =
        List.init n (fun k -> Word.mul_truncated b a.((i * n) + k) bm.((k * n) + j) ~bits)
      in
      out.((i * n) + j) <- Word.truncate (Word.sum b ~bits terms) ~bits
    done
  done;
  Builder.finish b ~outputs:(Array.concat (Array.to_list out))

let and_gates ~n ~bits = Circuit.and_count (circuit ~n ~bits)

type measurement = {
  n : int;
  seconds : float;
  and_count : int;
  total_bytes : int;
}

let measure ?(mode = Dstress_crypto.Ot_ext.Simulation) grp ~parties ~n ~bits ~seed =
  let c = circuit ~n ~bits in
  let session = Gmw.create_session ~mode grp ~parties ~seed in
  let prng = Dstress_util.Prng.of_int (Hashtbl.hash seed) in
  let inputs = Bitvec.random prng (2 * n * n * bits) in
  let input_shares = Gmw.share_input session inputs in
  let t0 = Unix.gettimeofday () in
  let out_shares = Gmw.eval session c ~input_shares in
  let seconds = Unix.gettimeofday () -. t0 in
  (* Sanity: the protocol result must match plaintext evaluation. *)
  let got = Sharing.reconstruct out_shares in
  let expected =
    Bitvec.of_bool_array (Circuit.eval c (Bitvec.to_bool_array inputs))
  in
  if not (Bitvec.equal got expected) then failwith "Matmul.measure: GMW result mismatch";
  {
    n;
    seconds;
    and_count = Circuit.and_count c;
    total_bytes = Traffic.total (Gmw.traffic session);
  }

let fit_cubic measurements =
  if measurements = [] then invalid_arg "Matmul.fit_cubic: empty";
  (* Single-coefficient least squares: c = sum(t * n^3) / sum(n^6). *)
  let num = ref 0.0 and den = ref 0.0 in
  List.iter
    (fun m ->
      let n3 = float_of_int (m.n * m.n * m.n) in
      num := !num +. (m.seconds *. n3);
      den := !den +. (n3 *. n3))
    measurements;
  !num /. !den

let extrapolate_seconds ~c ~n ~powers =
  c *. float_of_int (n * n * n) *. float_of_int powers

let years seconds = seconds /. (365.25 *. 24.0 *. 3600.0)
