lib/baseline/matmul.mli: Dstress_circuit Dstress_crypto
