lib/baseline/matmul.ml: Array Dstress_circuit Dstress_crypto Dstress_mpc Dstress_util Hashtbl List Unix
