(** The naïve baseline of §5.5: running the whole systemic-risk
    computation as one monolithic MPC.

    The closed form of an Eisenberg–Noe-style contagion model essentially
    raises an N x N matrix to the I-th power, so the paper benchmarks a
    single N x N matrix multiplication circuit in Wysteria for growing N,
    observes the O(N^3) blow-up (1.8 min at N = 10, 40 min at N = 25, out
    of memory beyond), and extrapolates to 287 years for the full U.S.
    banking system. This module reproduces that experiment against our
    GMW engine. *)

val circuit : n:int -> bits:int -> Dstress_circuit.Circuit.t
(** Product of two [n x n] matrices of [bits]-bit entries (entries wrap
    modulo [2^bits]). Inputs: [2 n^2 bits] values, row-major, A before B;
    outputs: [n^2] entries. *)

val and_gates : n:int -> bits:int -> int
(** AND-gate count of {!circuit} (cubic in [n]). *)

type measurement = {
  n : int;
  seconds : float;
  and_count : int;
  total_bytes : int;
}

val measure :
  ?mode:Dstress_crypto.Ot_ext.mode ->
  Dstress_crypto.Group.t ->
  parties:int ->
  n:int ->
  bits:int ->
  seed:string ->
  measurement
(** Evaluate one matrix product under GMW on random shared inputs and
    time it. Correctness of the result against plaintext evaluation is
    asserted. *)

val fit_cubic : measurement list -> float
(** Least-squares coefficient [c] of [seconds = c * n^3]. *)

val extrapolate_seconds : c:float -> n:int -> powers:int -> float
(** Estimated wall-clock for raising an [n x n] matrix to the
    [powers+1]-th power: [powers] successive multiplications. *)

val years : float -> float
