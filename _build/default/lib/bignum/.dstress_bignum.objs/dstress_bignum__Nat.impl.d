lib/bignum/nat.ml: Array Bytes Char Dstress_util Format Printf Stdlib String
