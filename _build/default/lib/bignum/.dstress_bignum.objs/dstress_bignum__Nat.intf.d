lib/bignum/nat.mli: Dstress_util Format
