(* Sign-and-magnitude over Nat. Invariant: the magnitude of a negative
   value is never zero (so zero has a unique representation). *)

type t = { neg : bool; mag : Nat.t }

let make neg mag = { neg = (neg && not (Nat.is_zero mag)); mag }

let zero = make false Nat.zero
let one = make false Nat.one
let minus_one = make true Nat.one

let of_int v =
  if v >= 0 then make false (Nat.of_int v) else make true (Nat.of_int (-v))

let to_int t =
  let m = Nat.to_int t.mag in
  if t.neg then -m else m

let of_nat n = make false n

let to_nat t =
  if t.neg then invalid_arg "Zint.to_nat: negative" else t.mag

let neg t = make (not t.neg) t.mag
let abs t = make false t.mag
let sign t = if Nat.is_zero t.mag then 0 else if t.neg then -1 else 1

let add a b =
  if a.neg = b.neg then make a.neg (Nat.add a.mag b.mag)
  else if Nat.compare a.mag b.mag >= 0 then make a.neg (Nat.sub a.mag b.mag)
  else make b.neg (Nat.sub b.mag a.mag)

let sub a b = add a (neg b)

let mul a b = make (a.neg <> b.neg) (Nat.mul a.mag b.mag)

let compare a b =
  match (sign a, sign b) with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | -1, _ -> Nat.compare b.mag a.mag
  | _, _ -> Nat.compare a.mag b.mag

let equal a b = compare a b = 0

(* Euclidean division: remainder in [0, |b|). *)
let divmod a b =
  if Nat.is_zero b.mag then raise Division_by_zero;
  let q0, r0 = Nat.divmod a.mag b.mag in
  if not a.neg then (make b.neg q0, make false r0)
  else if Nat.is_zero r0 then (make (not b.neg) q0, zero)
  else
    (* a < 0 with a nonzero natural remainder: round the quotient away so
       the remainder becomes |b| - r0 >= 0. *)
    (make (not b.neg) (Nat.add q0 Nat.one), make false (Nat.sub b.mag r0))

let erem a b = snd (divmod a b)

let to_string t = (if t.neg then "-" else "") ^ Nat.to_decimal t.mag

let pp ppf t = Format.pp_print_string ppf (to_string t)
