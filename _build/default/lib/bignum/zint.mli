(** Signed arbitrary-precision integers: a sign-and-magnitude wrapper over
    {!Nat}. Used where intermediate quantities may go negative (extended-gcd
    style computations, signed plaintexts in the exponential-ElGamal lookup
    table, and accounting deltas in the cost model). *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int : t -> int
(** Raises [Failure] if out of native range. *)

val of_nat : Nat.t -> t
val to_nat : t -> Nat.t
(** Raises [Invalid_argument] on negative values. *)

val neg : t -> t
val abs : t -> t
val sign : t -> int
(** -1, 0 or 1. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: the remainder is always non-negative and smaller
    than [|b|]. Raises [Division_by_zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val erem : t -> t -> t
(** Euclidean remainder, in [\[0, |b|)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
