(** SHA-256 (FIPS 180-4), implemented from scratch.

    The container has no crypto library, so we provide our own digest for
    the hash-based PRG, the random-oracle calls in the oblivious-transfer
    protocols, and commitment-style fingerprints in tests. Verified against
    the FIPS test vectors in the test suite. *)

val digest : bytes -> bytes
(** 32-byte digest. *)

val digest_string : string -> string
(** Convenience wrapper; returns the digest as a raw 32-byte string. *)

val hex_digest : string -> string
(** Digest of a string, hex-encoded (64 characters). *)

val hmac : key:bytes -> bytes -> bytes
(** HMAC-SHA256 (RFC 2104). *)
