(** Two-way traffic meter for a pair of protocol parties.

    The evaluation in the paper reports per-node traffic for every protocol
    phase; every simulated exchange in this code base is therefore metered
    at the point where bytes would cross the wire. *)

type t = { mutable a_to_b : int; mutable b_to_a : int }

val create : unit -> t
val add_a_to_b : t -> int -> unit
val add_b_to_a : t -> int -> unit
val total : t -> int
val reset : t -> unit
val pp : Format.formatter -> t -> unit
