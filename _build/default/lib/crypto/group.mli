(** Schnorr groups: the prime-order subgroup of Z_p* used by the ElGamal
    layer.

    The paper's prototype uses the secp384r1 elliptic curve; this build
    substitutes a multiplicative Schnorr group (a safe prime [p = 2q + 1]
    and the order-[q] subgroup of squares). Every property the protocol
    needs — additive homomorphism of exponential ElGamal, public-key
    re-randomization, ephemeral-key reuse — is generic over the group, so
    the substitution changes constants but not behaviour.

    Three parameter sets are provided: [toy] (64-bit, for fast unit tests),
    [medium] (128-bit) and [standard] (256-bit, comparable security margin
    story to the paper's "more than enough for current cryptanalysis" — the
    point of the evaluation is cost scaling, not concrete security). All
    were generated offline with a fixed seed and are embedded as hex. *)

type t
(** Group parameters plus a Montgomery context for fast arithmetic mod p. *)

type elt = Dstress_bignum.Nat.t
(** Group elements are naturals in [\[1, p)]. *)

type exponent = Dstress_bignum.Nat.t
(** Exponents are naturals in [\[0, q)]. *)

val make : p:Dstress_bignum.Nat.t -> q:Dstress_bignum.Nat.t -> g:elt -> t
(** Build group parameters. Raises [Invalid_argument] if [p <> 2q + 1] or
    if [g] does not have order [q]. *)

val toy : t Lazy.t
val medium : t Lazy.t
val standard : t Lazy.t

val by_name : string -> t
(** ["toy" | "medium" | "standard"]. Raises [Invalid_argument] otherwise. *)

val p : t -> Dstress_bignum.Nat.t
val q : t -> Dstress_bignum.Nat.t
val g : t -> elt

val element_bytes : t -> int
(** Serialized size of one group element (the ciphertext-size unit used by
    the traffic model). *)

val mul : t -> elt -> elt -> elt
val inv : t -> elt -> elt
val pow : t -> elt -> exponent -> elt

val pow_g : t -> exponent -> elt
(** [pow_g t e] is [g^e], via a cached Montgomery-form base. *)

val random_exponent : Prg.t -> t -> exponent
(** Uniform in [\[1, q)] (never zero, so re-randomizers are invertible). *)

val exp_add : t -> exponent -> exponent -> exponent
val exp_sub : t -> exponent -> exponent -> exponent
val exp_mul : t -> exponent -> exponent -> exponent
val exp_inv : t -> exponent -> exponent
(** Arithmetic in Z_q. [exp_inv] raises [Not_found] on zero. *)

val is_element : t -> elt -> bool
(** Membership test for the order-q subgroup. *)

val elt_equal : elt -> elt -> bool
val pp_elt : Format.formatter -> elt -> unit
