lib/crypto/sha256.ml: Array Bytes Char Dstress_util Int32 Int64
