lib/crypto/exp_elgamal.ml: Dstress_bignum Elgamal Group Hashtbl List
