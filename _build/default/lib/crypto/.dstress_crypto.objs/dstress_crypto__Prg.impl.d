lib/crypto/prg.ml: Bytes Char Dstress_bignum Dstress_util Int64 Sha256
