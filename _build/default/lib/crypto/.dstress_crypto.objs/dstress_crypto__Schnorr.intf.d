lib/crypto/schnorr.mli: Dstress_bignum Elgamal Group Prg
