lib/crypto/wire.ml: Bytes Char Dstress_bignum Dstress_util Elgamal Group List Schnorr
