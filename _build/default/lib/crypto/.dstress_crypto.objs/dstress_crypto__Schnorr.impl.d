lib/crypto/schnorr.ml: Bytes Dstress_bignum Elgamal Group Sha256
