lib/crypto/ot_ext.mli: Group Meter Prg
