lib/crypto/group.ml: Dstress_bignum Lazy Prg
