lib/crypto/meter.mli: Format
