lib/crypto/exp_elgamal.mli: Elgamal Group Prg
