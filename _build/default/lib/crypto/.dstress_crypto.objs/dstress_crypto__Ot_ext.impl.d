lib/crypto/ot_ext.ml: Array Bytes Char Dstress_util Group Int64 Meter Ot Prg Printf Sha256
