lib/crypto/group.mli: Dstress_bignum Format Lazy Prg
