lib/crypto/elgamal.ml: Group
