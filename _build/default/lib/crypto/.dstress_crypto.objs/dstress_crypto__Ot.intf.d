lib/crypto/ot.mli: Group Meter Prg
