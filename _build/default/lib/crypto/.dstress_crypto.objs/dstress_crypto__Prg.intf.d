lib/crypto/prg.mli: Dstress_bignum Dstress_util
