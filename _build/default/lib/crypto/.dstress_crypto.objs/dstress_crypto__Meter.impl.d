lib/crypto/meter.ml: Format
