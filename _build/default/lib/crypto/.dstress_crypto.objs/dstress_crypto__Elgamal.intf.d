lib/crypto/elgamal.mli: Group Prg
