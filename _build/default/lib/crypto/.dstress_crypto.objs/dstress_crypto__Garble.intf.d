lib/crypto/garble.mli: Dstress_circuit Dstress_util Group Meter Ot_ext
