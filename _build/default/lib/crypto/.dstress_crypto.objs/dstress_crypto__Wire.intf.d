lib/crypto/wire.mli: Dstress_util Elgamal Group Schnorr
