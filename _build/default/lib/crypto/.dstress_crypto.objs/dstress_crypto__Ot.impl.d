lib/crypto/ot.ml: Bytes Char Dstress_bignum Group Meter Prg Sha256
