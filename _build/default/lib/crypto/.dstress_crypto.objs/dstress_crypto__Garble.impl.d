lib/crypto/garble.ml: Array Bytes Char Dstress_circuit Dstress_util Hashtbl List Meter Ot_ext Prg Sha256
