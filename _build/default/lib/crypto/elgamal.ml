type public_key = Group.elt
type secret_key = Group.exponent

type ciphertext = { c1 : Group.elt; c2 : Group.elt }

let keygen prg grp =
  let x = Group.random_exponent prg grp in
  (x, Group.pow_g grp x)

let encrypt prg grp h m =
  let y = Group.random_exponent prg grp in
  { c1 = Group.pow_g grp y; c2 = Group.mul grp m (Group.pow grp h y) }

let decrypt grp x { c1; c2 } =
  let s = Group.pow grp c1 x in
  Group.mul grp c2 (Group.inv grp s)

let mul grp a b = { c1 = Group.mul grp a.c1 b.c1; c2 = Group.mul grp a.c2 b.c2 }

let ciphertext_bytes grp = 2 * Group.element_bytes grp

let ciphertext_equal a b = Group.elt_equal a.c1 b.c1 && Group.elt_equal a.c2 b.c2
