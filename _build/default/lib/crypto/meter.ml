type t = { mutable a_to_b : int; mutable b_to_a : int }

let create () = { a_to_b = 0; b_to_a = 0 }
let add_a_to_b t n = t.a_to_b <- t.a_to_b + n
let add_b_to_a t n = t.b_to_a <- t.b_to_a + n
let total t = t.a_to_b + t.b_to_a

let reset t =
  t.a_to_b <- 0;
  t.b_to_a <- 0

let pp ppf t = Format.fprintf ppf "a->b: %d B, b->a: %d B" t.a_to_b t.b_to_a
