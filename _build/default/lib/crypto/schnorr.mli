(** Schnorr signatures over a {!Group} (Fiat–Shamir transform, SHA-256 as
    the random oracle).

    The trusted party of §3.4 signs the block list and the block
    certificates so nodes can verify they received untampered key
    material. The paper treats signatures as a black box ("σTP(...)"); a
    Schnorr scheme over the group we already have is the natural
    instantiation. *)

type signature = { challenge : Dstress_bignum.Nat.t; response : Dstress_bignum.Nat.t }

val keygen : Prg.t -> Group.t -> Elgamal.secret_key * Elgamal.public_key

val sign : Prg.t -> Group.t -> Elgamal.secret_key -> string -> signature

val verify : Group.t -> Elgamal.public_key -> string -> signature -> bool

val signature_bytes : Group.t -> int
(** Wire size (two exponents). *)
