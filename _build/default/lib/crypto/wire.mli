(** Binary wire format for protocol messages.

    The traffic model charges specific byte counts for keys, ciphertexts,
    signatures and share bundles; this module is the actual encoding that
    backs those numbers. Group elements and exponents are fixed-width
    big-endian (the width determined by the group), so every §5.3 formula
    — [(l+1) * element_bytes] for a Kurosawa bundle, two exponents for a
    signature — is literally the length of the produced bytes, which the
    tests assert. Decoding validates group membership, so a corrupted or
    malicious encoding is rejected rather than processed. *)

type reader
(** Stateful cursor over received bytes. *)

val reader : bytes -> reader
val remaining : reader -> int

val encode_element : Group.t -> Group.elt -> bytes
(** Fixed width: [Group.element_bytes]. *)

val decode_element : Group.t -> reader -> Group.elt
(** Raises [Failure] on truncation or a value outside the order-q
    subgroup. *)

val encode_exponent : Group.t -> Group.exponent -> bytes
val decode_exponent : Group.t -> reader -> Group.exponent
(** Raises [Failure] on truncation or a value >= q. *)

val encode_ciphertext : Group.t -> Elgamal.ciphertext -> bytes
val decode_ciphertext : Group.t -> reader -> Elgamal.ciphertext

val encode_multi_bundle : Group.t -> Group.elt * Group.elt list -> bytes
(** A Kurosawa multi-recipient bundle: shared ephemeral plus [l] bodies,
    with a 4-byte count prefix. *)

val decode_multi_bundle : Group.t -> reader -> Group.elt * Group.elt list

val encode_signature : Group.t -> Schnorr.signature -> bytes
val decode_signature : Group.t -> reader -> Schnorr.signature

val encode_bits : Dstress_util.Bitvec.t -> bytes
(** 4-byte bit-length prefix, then packed bits. *)

val decode_bits : reader -> Dstress_util.Bitvec.t

val multi_bundle_bytes : Group.t -> int -> int
(** Exact encoded size of an [l]-body bundle (count prefix included). *)
