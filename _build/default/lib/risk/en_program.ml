module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Bitvec = Dstress_util.Bitvec
module Graph = Dstress_runtime.Graph
module Vertex_program = Dstress_runtime.Vertex_program

let bits_for v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  max 1 (go v 0)

let state_words ~degree = 3 + (2 * degree)
let state_bits ~l ~degree = state_words ~degree * l
let agg_bits ~l = l + 14

(* State word offsets. *)
let off_cash = 0
let off_total = 1
let off_deficit = 2
let off_debt ~s = 3 + s
let off_credit ~degree ~s = 3 + degree + s

let make ?(epsilon = 0.23) ?(sensitivity = 20) ?(noise_max = 600) ~l ~degree ~iterations () =
  if l < 4 || l > 20 then invalid_arg "En_program.make: l out of [4,20]";
  if degree < 1 then invalid_arg "En_program.make: degree < 1";
  let sb = state_bits ~l ~degree in
  let f = l in
  (* width enough for cash + D credits *)
  let wide = l + bits_for (degree + 1) in
  let build_update b ~state ~incoming =
    let word off = Array.sub state (off * l) l in
    let cash = word off_cash and total = word off_total in
    let debts = Array.init degree (fun s -> word (off_debt ~s)) in
    let credits = Array.init degree (fun s -> word (off_credit ~degree ~s)) in
    (* liquid = cash + sum_s (credit_s - shortfall_s), each term >= 0. *)
    let nets =
      List.init degree (fun s -> Word.saturating_sub b credits.(s) incoming.(s))
    in
    let liquid = Word.sum b ~bits:wide (cash :: nets) in
    let deficit_w = Word.saturating_sub b (Word.zero_extend b total ~bits:wide) liquid in
    (* deficit <= totalDebt < 2^l, so the truncation is exact. *)
    let deficit = Word.truncate deficit_w ~bits:l in
    (* fraction = deficit * 2^f / totalDebt, in [0, 2^f]: f+1 bits. *)
    let dividend =
      Word.shift_left_const b (Word.zero_extend b deficit ~bits:(l + f)) f
    in
    let quotient, _ = Word.divmod b dividend total in
    let fraction = Word.truncate quotient ~bits:(f + 1) in
    let zero_frac = Word.constant b ~bits:(f + 1) 0 in
    let fraction = Word.mux b (Word.is_zero b total) zero_frac fraction in
    (* shortfall message to creditor s: debt_s * fraction / 2^f <= debt_s. *)
    let outgoing =
      Array.map
        (fun debt ->
          Word.truncate
            (Word.shift_right_const b (Word.mul b debt fraction) f)
            ~bits:l)
        debts
    in
    let new_state =
      Array.concat
        ([ cash; total; deficit ] @ Array.to_list debts @ Array.to_list credits)
    in
    (new_state, outgoing)
  in
  let build_aggregand b ~state =
    Word.zero_extend b (Array.sub state (off_deficit * l) l) ~bits:(agg_bits ~l)
  in
  {
    Vertex_program.name = "eisenberg-noe";
    state_bits = sb;
    message_bits = l;
    iterations;
    sensitivity;
    epsilon;
    noise_max_magnitude = noise_max;
    agg_bits = agg_bits ~l;
    build_update;
    build_aggregand;
  }

let graph_of_instance inst =
  Reference.en_validate inst;
  let edges =
    List.sort_uniq compare (List.map (fun (i, j, _) -> (i, j)) inst.Reference.debts)
  in
  Graph.create ~n:inst.Reference.en_n ~edges

let encode_instance inst ~graph ~l ~degree ~scale =
  Reference.en_validate inst;
  let n = inst.Reference.en_n in
  let cap = (1 lsl l) - 1 in
  let to_units what v =
    let u = int_of_float (Float.round (v /. scale)) in
    if u < 0 || u > cap then
      invalid_arg (Printf.sprintf "En_program.encode_instance: %s = %g does not fit %d bits" what v l);
    u
  in
  let total_debt = Reference.en_total_debt inst in
  let debt_amount = Hashtbl.create 64 in
  List.iter (fun (i, j, a) -> Hashtbl.replace debt_amount (i, j) a) inst.Reference.debts;
  Array.init n (fun i ->
      let words = Array.make (state_words ~degree) 0 in
      words.(off_cash) <- to_units "cash" inst.Reference.cash.(i);
      words.(off_total) <- to_units "total debt" total_debt.(i);
      words.(off_deficit) <- 0;
      List.iteri
        (fun s j ->
          words.(off_debt ~s) <-
            to_units "debt" (Option.value ~default:0.0 (Hashtbl.find_opt debt_amount (i, j))))
        (Graph.out_neighbors graph i);
      List.iteri
        (fun s j ->
          words.(off_credit ~degree ~s) <-
            to_units "credit" (Option.value ~default:0.0 (Hashtbl.find_opt debt_amount (j, i))))
        (Graph.in_neighbors graph i);
      Bitvec.concat (Array.to_list (Array.map (fun w -> Bitvec.of_int ~bits:l w) words)))

let decode_output ~scale units = float_of_int units *. scale
