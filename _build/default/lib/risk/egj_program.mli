(** The Elliott–Golub–Jackson model as a DStress vertex program
    (Figure 2b).

    Values are fixed-point with [frac] binary places inside [l]-bit words
    (so dollar magnitudes must stay below [2^(l - frac) * scale]).
    Per-vertex state:

    - base assets, original valuation, failure threshold, penalty and
      current value (one word each),
    - the dollar value of the stake held in each in-neighbor
      ([insh * origVal], D words, in-slot order).

    Messages carry the sender's current *discount* [1 - value/origVal] as
    an [l]-bit fixed-point fraction; the no-op message 0 means "no
    devaluation". Each round a bank revalues its equity stakes with the
    received discounts, applies the failure penalty if it dropped below
    threshold, and broadcasts its own fresh discount.

    The aggregand is [max(0, threshold - value)] — the paper's TDS of
    failed banks relative to their thresholds. *)

val make :
  ?epsilon:float ->
  ?sensitivity:int ->
  ?noise_max:int ->
  l:int ->
  frac:int ->
  degree:int ->
  iterations:int ->
  unit ->
  Dstress_runtime.Vertex_program.t
(** [frac] must satisfy [0 < frac < l]. Defaults as in {!En_program.make}
    with [sensitivity = 20] (the 2/r bound of §4.4 with r = 0.1). *)

val state_bits : l:int -> degree:int -> int
val agg_bits : l:int -> int

val graph_of_instance : Reference.egj_instance -> Dstress_runtime.Graph.t
(** Edge (issuer -> holder) for every cross-holding: discounts flow from
    the issuer to its shareholders. *)

val encode_instance :
  Reference.egj_instance ->
  graph:Dstress_runtime.Graph.t ->
  l:int ->
  frac:int ->
  degree:int ->
  scale:float ->
  Dstress_util.Bitvec.t array

val decode_output : scale:float -> frac:int -> int -> float
