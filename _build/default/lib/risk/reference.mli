(** Cleartext reference implementations of the two systemic-risk models
    (§4.2, §4.3), operating on floating-point balance sheets.

    These are the semantic oracles: the circuit-based vertex programs in
    {!En_program} and {!Egj_program} must agree with them up to
    fixed-point quantization, and the DStress engine must agree with the
    programs up to the released DP noise. They are also what the
    Appendix-C convergence study runs. *)

(** An Eisenberg–Noe economy: banks hold cash and owe each other debts. *)
type en_instance = {
  en_n : int;
  cash : float array;
  debts : (int * int * float) list;  (** (debtor, creditor, amount) *)
}

(** An Elliott–Golub–Jackson economy: banks hold primitive assets and
    equity shares of each other, fail below a threshold, and then suffer
    an extra penalty. *)
type egj_instance = {
  egj_n : int;
  base_assets : float array;
  orig_val : float array;  (** initial valuation of each bank *)
  threshold : float array;
  penalty : float array;
  holdings : (int * int * float) list;
      (** (holder, issuer, fraction): holder owns that fraction of issuer *)
}

type en_result = {
  prorate : float array;  (** payment fraction per bank, in [0,1] *)
  liquid : float array;
  en_tds : float;  (** total dollar shortfall *)
  en_rounds_to_converge : int;  (** first round with change < tolerance *)
}

val eisenberg_noe : ?iterations:int -> ?tolerance:float -> en_instance -> en_result
(** Fixpoint iteration of Figure 2(a). Default iterations: [en_n] (the
    model provably converges within n rounds); default tolerance 1e-9. *)

type egj_result = {
  value : float array;
  failed : bool array;
  egj_tds : float;
  egj_rounds_to_converge : int;
  monotone : bool;  (** valuations never increased across rounds *)
}

val elliott_golub_jackson : ?iterations:int -> ?tolerance:float -> egj_instance -> egj_result
(** Fixpoint iteration of Figure 2(b), with the discontinuous failure
    penalty. Converges monotonically from above (Hemenway–Khanna). *)

val en_total_debt : en_instance -> float array
val en_validate : en_instance -> unit
(** Raises [Invalid_argument] on malformed instances (negative amounts,
    out-of-range banks, duplicate debts). *)

val egj_validate : egj_instance -> unit
