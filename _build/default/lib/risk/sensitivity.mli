(** Sensitivity bounds for the risk models (§4.4).

    Hemenway & Khanna prove that, under a leverage bound [r] (a bank's
    equity is at least an [r] fraction of its total assets — Basel III
    mandates r = 0.1), the TDS of the Elliott–Golub–Jackson model changes
    by at most [2/r] when one portfolio is reallocated by one dollar-unit,
    and an analogous argument gives [1/r] for Eisenberg–Noe. These bounds
    are independent of the iteration count, which is why the number of
    rounds costs running time but no privacy. *)

val eisenberg_noe : leverage:float -> float
(** [1 / r]. Raises [Invalid_argument] if [r] is outside (0, 1]. *)

val elliott_golub_jackson : leverage:float -> float
(** [2 / r]. *)

val units : sensitivity:float -> scale_dollars:float -> granularity_dollars:float -> int
(** Convert a dollar-space sensitivity into integer aggregate units: a
    [granularity_dollars] reallocation (the paper's T = $1B) moves the
    integer TDS by at most [ceil (sensitivity * granularity / scale)]
    units when the aggregate is expressed in [scale_dollars] units. *)

val paper_epsilon_budget : unit -> float * float * int
(** The §4.5 policy: [(eps_max = ln 2, eps_query = 0.23, runs_per_year = 3)]. *)
