module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Bitvec = Dstress_util.Bitvec
module Graph = Dstress_runtime.Graph
module Vertex_program = Dstress_runtime.Vertex_program

let bits_for v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  max 1 (go v 0)

let state_words ~degree = 5 + degree
let state_bits ~l ~degree = state_words ~degree * l
let agg_bits ~l = l + 14

let off_base = 0
let off_orig = 1
let off_threshold = 2
let off_penalty = 3
let off_value = 4
let off_holding ~s = 5 + s

let make ?(epsilon = 0.23) ?(sensitivity = 20) ?(noise_max = 600) ~l ~frac ~degree
    ~iterations () =
  if l < 4 || l > 20 then invalid_arg "Egj_program.make: l out of [4,20]";
  if frac <= 0 || frac >= l then invalid_arg "Egj_program.make: frac out of (0,l)";
  if degree < 1 then invalid_arg "Egj_program.make: degree < 1";
  let sb = state_bits ~l ~degree in
  let wide = l + bits_for (degree + 1) in
  let build_update b ~state ~incoming =
    let word off = Array.sub state (off * l) l in
    let base = word off_base
    and orig = word off_orig
    and threshold = word off_threshold
    and penalty = word off_penalty in
    let holdings = Array.init degree (fun s -> word (off_holding ~s)) in
    let one = Word.constant b ~bits:l (1 lsl frac) in
    (* Stake value under the issuer's current discount:
       holding * (1 - discount), fixed-point multiply. *)
    let contribs =
      List.init degree (fun s ->
          let factor = Word.saturating_sub b one incoming.(s) in
          Word.truncate
            (Word.shift_right_const b (Word.mul b holdings.(s) factor) frac)
            ~bits:l)
    in
    let value_w = Word.sum b ~bits:wide (base :: contribs) in
    (* Saturate at 2^l - 1 rather than wrap if the generator overshot. *)
    let cap = Word.constant b ~bits:wide ((1 lsl l) - 1) in
    let value_w = Word.min b value_w cap in
    let value = Word.truncate value_w ~bits:l in
    let failing = Word.lt b value threshold in
    let penalized = Word.saturating_sub b value penalty in
    let value' = Word.mux b failing penalized value in
    (* discount = 1 - value/orig, clamped to [0, 1]. *)
    let resize w ~bits =
      if Word.width w >= bits then Word.truncate w ~bits else Word.zero_extend b w ~bits
    in
    let dividend = Word.shift_left_const b (Word.zero_extend b value' ~bits:(l + frac)) frac in
    let ratio_q, _ = Word.divmod b dividend orig in
    (* Clamp at full width first (value may exceed orig), then narrow:
       ratio <= 1.0 fits back into l bits. *)
    let ratio_clamped = Word.min b ratio_q (resize one ~bits:(Word.width ratio_q)) in
    let discount = Word.saturating_sub b one (resize ratio_clamped ~bits:l) in
    let zero_msg = Word.constant b ~bits:l 0 in
    let discount = Word.mux b (Word.is_zero b orig) zero_msg discount in
    let outgoing = Array.make degree discount in
    let new_state =
      Array.concat
        ([ base; orig; threshold; penalty; value' ] @ Array.to_list holdings)
    in
    (new_state, outgoing)
  in
  let build_aggregand b ~state =
    let word off = Array.sub state (off * l) l in
    let threshold = word off_threshold and value = word off_value in
    let shortfall = Word.saturating_sub b threshold value in
    Word.zero_extend b shortfall ~bits:(agg_bits ~l)
  in
  {
    Vertex_program.name = "elliott-golub-jackson";
    state_bits = sb;
    message_bits = l;
    iterations;
    sensitivity;
    epsilon;
    noise_max_magnitude = noise_max;
    agg_bits = agg_bits ~l;
    build_update;
    build_aggregand;
  }

let graph_of_instance inst =
  Reference.egj_validate inst;
  let edges =
    List.sort_uniq compare
      (List.map (fun (holder, issuer, _) -> (issuer, holder)) inst.Reference.holdings)
  in
  Graph.create ~n:inst.Reference.egj_n ~edges

let encode_instance inst ~graph ~l ~frac ~degree ~scale =
  Reference.egj_validate inst;
  let n = inst.Reference.egj_n in
  let cap = (1 lsl l) - 1 in
  let to_units what v =
    let u = int_of_float (Float.round (v /. scale *. float_of_int (1 lsl frac))) in
    if u < 0 || u > cap then
      invalid_arg
        (Printf.sprintf "Egj_program.encode_instance: %s = %g does not fit" what v);
    u
  in
  let holding_value = Hashtbl.create 64 in
  List.iter
    (fun (h, iss, share) ->
      Hashtbl.replace holding_value (h, iss) (share *. inst.Reference.orig_val.(iss)))
    inst.Reference.holdings;
  Array.init n (fun i ->
      let words = Array.make (state_words ~degree) 0 in
      words.(off_base) <- to_units "base" inst.Reference.base_assets.(i);
      words.(off_orig) <- to_units "orig_val" inst.Reference.orig_val.(i);
      words.(off_threshold) <- to_units "threshold" inst.Reference.threshold.(i);
      words.(off_penalty) <- to_units "penalty" inst.Reference.penalty.(i);
      words.(off_value) <- to_units "value" inst.Reference.orig_val.(i);
      List.iteri
        (fun s issuer ->
          words.(off_holding ~s) <-
            to_units "holding"
              (Option.value ~default:0.0 (Hashtbl.find_opt holding_value (i, issuer))))
        (Graph.in_neighbors graph i);
      Bitvec.concat (Array.to_list (Array.map (fun w -> Bitvec.of_int ~bits:l w) words)))

let decode_output ~scale ~frac units =
  float_of_int units /. float_of_int (1 lsl frac) *. scale
