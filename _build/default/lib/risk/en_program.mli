(** The Eisenberg–Noe model as a DStress vertex program (Figure 2a).

    Dollar amounts are fixed-point integers: [scale] dollars per unit,
    [l]-bit words (the paper's L = 12..16-bit datatype). Per-vertex state
    holds the bank's balance sheet:

    - cash, total debt and current deficit (one word each),
    - the debt owed to each out-neighbor (D words, out-slot order),
    - the credit due from each in-neighbor (D words, in-slot order).

    Each round, a bank receives its debtors' shortfalls, recomputes its
    liquidity, and sends each creditor its prorated shortfall
    [debt * deficit / totalDebt] (computed with one in-circuit division and
    D multiplications). The no-op message is 0 — "no shortfall" — so
    padding slots are semantically neutral.

    The aggregand is the bank's deficit [max(0, totalDebt - liquid)], so
    the aggregate is the paper's total dollar shortfall
    [TDS = sum_i totalDebt_i * (1 - prorate_i)]. *)

val make :
  ?epsilon:float ->
  ?sensitivity:int ->
  ?noise_max:int ->
  l:int ->
  degree:int ->
  iterations:int ->
  unit ->
  Dstress_runtime.Vertex_program.t
(** Defaults: [epsilon = 0.23], [sensitivity = 20] (Basel III leverage
    bound r = 0.1 gives s = 1/r = 10; we keep the conservative 2/r = 20 so
    both models share a noise scale), [noise_max = 600]. [l] must be in
    [\[4, 20\]] and [degree >= 1]. *)

val state_bits : l:int -> degree:int -> int
val agg_bits : l:int -> int

val graph_of_instance : Reference.en_instance -> Dstress_runtime.Graph.t
(** Edge (debtor -> creditor) for every debt. *)

val encode_instance :
  Reference.en_instance ->
  graph:Dstress_runtime.Graph.t ->
  l:int ->
  degree:int ->
  scale:float ->
  Dstress_util.Bitvec.t array
(** Initial vertex states. Raises [Invalid_argument] if any scaled value
    (including a bank's total debt) does not fit in [l] bits. *)

val decode_output : scale:float -> int -> float
(** Noised aggregate units back to dollars. *)
