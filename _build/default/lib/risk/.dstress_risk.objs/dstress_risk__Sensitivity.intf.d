lib/risk/sensitivity.mli:
