lib/risk/egj_program.ml: Array Dstress_circuit Dstress_runtime Dstress_util Float Hashtbl List Option Printf Reference
