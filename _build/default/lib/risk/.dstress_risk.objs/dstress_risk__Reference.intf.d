lib/risk/reference.mli:
