lib/risk/reference.ml: Array Float Hashtbl List
