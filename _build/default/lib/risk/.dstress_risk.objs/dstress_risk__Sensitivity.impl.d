lib/risk/sensitivity.ml:
