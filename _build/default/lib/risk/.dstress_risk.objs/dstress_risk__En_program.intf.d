lib/risk/en_program.mli: Dstress_runtime Dstress_util Reference
