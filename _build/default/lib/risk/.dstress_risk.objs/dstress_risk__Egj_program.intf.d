lib/risk/egj_program.mli: Dstress_runtime Dstress_util Reference
