type en_instance = {
  en_n : int;
  cash : float array;
  debts : (int * int * float) list;
}

type egj_instance = {
  egj_n : int;
  base_assets : float array;
  orig_val : float array;
  threshold : float array;
  penalty : float array;
  holdings : (int * int * float) list;
}

type en_result = {
  prorate : float array;
  liquid : float array;
  en_tds : float;
  en_rounds_to_converge : int;
}

type egj_result = {
  value : float array;
  failed : bool array;
  egj_tds : float;
  egj_rounds_to_converge : int;
  monotone : bool;
}

let en_validate inst =
  if Array.length inst.cash <> inst.en_n then invalid_arg "Reference.en: cash length";
  Array.iter (fun c -> if c < 0.0 then invalid_arg "Reference.en: negative cash") inst.cash;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (i, j, a) ->
      if i < 0 || i >= inst.en_n || j < 0 || j >= inst.en_n then
        invalid_arg "Reference.en: bank out of range";
      if i = j then invalid_arg "Reference.en: self-debt";
      if a < 0.0 then invalid_arg "Reference.en: negative debt";
      if Hashtbl.mem seen (i, j) then invalid_arg "Reference.en: duplicate debt";
      Hashtbl.replace seen (i, j) ())
    inst.debts

let en_total_debt inst =
  let total = Array.make inst.en_n 0.0 in
  List.iter (fun (i, _, a) -> total.(i) <- total.(i) +. a) inst.debts;
  total

(* Figure 2(a): iterate shortfall propagation. Each round, every bank
   receives the unpaid fraction of each debt owed to it, recomputes its
   liquidity, and prorates its own payments if insolvent. *)
let eisenberg_noe ?iterations ?(tolerance = 1e-9) inst =
  en_validate inst;
  let n = inst.en_n in
  let iterations = match iterations with Some i -> i | None -> n in
  let total_debt = en_total_debt inst in
  let prorate = Array.make n 1.0 in
  let liquid = Array.make n 0.0 in
  let converged_at = ref max_int in
  for round = 1 to iterations do
    (* Incoming payments under current prorate factors. *)
    Array.blit inst.cash 0 liquid 0 n;
    List.iter (fun (i, j, a) -> liquid.(j) <- liquid.(j) +. (a *. prorate.(i))) inst.debts;
    let max_change = ref 0.0 in
    for i = 0 to n - 1 do
      let fresh =
        if total_debt.(i) > 0.0 && liquid.(i) < total_debt.(i) then
          liquid.(i) /. total_debt.(i)
        else 1.0
      in
      max_change := Float.max !max_change (abs_float (fresh -. prorate.(i)));
      prorate.(i) <- fresh
    done;
    if !max_change < tolerance && !converged_at = max_int then converged_at := round
  done;
  let tds = ref 0.0 in
  for i = 0 to n - 1 do
    tds := !tds +. (total_debt.(i) *. (1.0 -. prorate.(i)))
  done;
  {
    prorate;
    liquid;
    en_tds = !tds;
    en_rounds_to_converge = (if !converged_at = max_int then iterations else !converged_at);
  }

let egj_validate inst =
  let check name arr =
    if Array.length arr <> inst.egj_n then invalid_arg ("Reference.egj: " ^ name ^ " length");
    Array.iter (fun v -> if v < 0.0 then invalid_arg ("Reference.egj: negative " ^ name)) arr
  in
  check "base" inst.base_assets;
  check "orig_val" inst.orig_val;
  check "threshold" inst.threshold;
  check "penalty" inst.penalty;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (h, iss, f) ->
      if h < 0 || h >= inst.egj_n || iss < 0 || iss >= inst.egj_n then
        invalid_arg "Reference.egj: bank out of range";
      if h = iss then invalid_arg "Reference.egj: self-holding";
      if f < 0.0 || f > 1.0 then invalid_arg "Reference.egj: share out of [0,1]";
      if Hashtbl.mem seen (h, iss) then invalid_arg "Reference.egj: duplicate holding";
      Hashtbl.replace seen (h, iss) ())
    inst.holdings

(* Figure 2(b): each bank's value is its base assets plus its equity
   stakes discounted by the issuers' current devaluations, with a penalty
   once the value drops below the failure threshold. *)
let elliott_golub_jackson ?iterations ?(tolerance = 1e-9) inst =
  egj_validate inst;
  let n = inst.egj_n in
  let iterations = match iterations with Some i -> i | None -> n in
  let discount = Array.make n 0.0 in
  let value = Array.copy inst.orig_val in
  let monotone = ref true in
  let converged_at = ref max_int in
  for round = 1 to iterations do
    let fresh = Array.copy inst.base_assets in
    List.iter
      (fun (h, iss, share) ->
        fresh.(h) <- fresh.(h) +. (share *. (1.0 -. discount.(iss)) *. inst.orig_val.(iss)))
      inst.holdings;
    for i = 0 to n - 1 do
      if fresh.(i) < inst.threshold.(i) then fresh.(i) <- fresh.(i) -. inst.penalty.(i);
      if fresh.(i) < 0.0 then fresh.(i) <- 0.0
    done;
    let max_change = ref 0.0 in
    for i = 0 to n - 1 do
      if fresh.(i) > value.(i) +. 1e-9 then monotone := false;
      max_change := Float.max !max_change (abs_float (fresh.(i) -. value.(i)));
      value.(i) <- fresh.(i);
      discount.(i) <-
        (if inst.orig_val.(i) > 0.0 then
           Float.max 0.0 (1.0 -. (value.(i) /. inst.orig_val.(i)))
         else 0.0)
    done;
    if !max_change < tolerance && !converged_at = max_int then converged_at := round
  done;
  let failed = Array.mapi (fun i v -> v < inst.threshold.(i)) value in
  let tds = ref 0.0 in
  for i = 0 to n - 1 do
    if failed.(i) then tds := !tds +. (inst.threshold.(i) -. value.(i))
  done;
  {
    value;
    failed;
    egj_tds = !tds;
    egj_rounds_to_converge = (if !converged_at = max_int then iterations else !converged_at);
    monotone = !monotone;
  }
