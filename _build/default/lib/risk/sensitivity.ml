let check_leverage r =
  if r <= 0.0 || r > 1.0 then invalid_arg "Sensitivity: leverage out of (0,1]"

let eisenberg_noe ~leverage =
  check_leverage leverage;
  1.0 /. leverage

let elliott_golub_jackson ~leverage =
  check_leverage leverage;
  2.0 /. leverage

let units ~sensitivity ~scale_dollars ~granularity_dollars =
  if scale_dollars <= 0.0 || granularity_dollars <= 0.0 then
    invalid_arg "Sensitivity.units: nonpositive scale";
  int_of_float (ceil (sensitivity *. granularity_dollars /. scale_dollars))

let paper_epsilon_budget () = (log 2.0, 0.23, 3)
