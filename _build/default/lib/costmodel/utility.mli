(** The §4.5 utility analysis: how precisely can the TDS be released, how
    often can the stress test run, and does the noise actually preserve
    the signal regulators care about?

    The paper's policy: a yearly budget of [eps_max = ln 2] ("no adversary
    doubles its confidence in any fact"), dollar-DP at granularity
    T = $1B, EGJ sensitivity 2/r = 20 under the Basel III leverage bound
    r = 0.1, and a +-$200B accuracy target at 95% confidence — which costs
    [eps_query >= 0.23] per run and allows three runs per year. *)

type policy = {
  epsilon_max : float;
  sensitivity : float;  (** in granularity units (20 for EGJ at r = 0.1) *)
  granularity_dollars : float;  (** T *)
  accuracy_dollars : float;  (** two-sided accuracy target A *)
  confidence : float;  (** e.g. 0.95 *)
}

val paper_policy : policy

val epsilon_for_accuracy : policy -> float
(** Smallest [eps_query] such that
    [P(noise magnitude > A) <= 1 - confidence], with the paper's
    one-sided-tail convention [1/2 * exp(-A eps / (s T))]. *)

val runs_per_year : policy -> int
(** [floor (epsilon_max / epsilon_for_accuracy)]. *)

val noise_scale_dollars : policy -> epsilon:float -> float
(** The Laplace scale [s * T / eps] in dollars. *)

type accuracy_stats = {
  mean_abs_error : float;
  p95_abs_error : float;
  within_target : float;  (** fraction of draws within the accuracy target *)
}

val monte_carlo : Dstress_util.Prng.t -> policy -> epsilon:float -> samples:int -> accuracy_stats
(** Empirical noise-magnitude distribution (in dollars). *)

val detection_rate :
  Dstress_util.Prng.t ->
  policy ->
  epsilon:float ->
  crisis_tds:float ->
  calm_tds:float ->
  threshold:float ->
  samples:int ->
  float * float
(** [(true_positive_rate, false_positive_rate)] of flagging a crisis when
    the noised TDS exceeds [threshold] — the "early warning survives the
    noise" claim of §2.3 made quantitative. *)
