module Prng = Dstress_util.Prng
module Mechanism = Dstress_dp.Mechanism

type policy = {
  epsilon_max : float;
  sensitivity : float;
  granularity_dollars : float;
  accuracy_dollars : float;
  confidence : float;
}

let paper_policy =
  {
    epsilon_max = log 2.0;
    sensitivity = 20.0;
    granularity_dollars = 1e9;
    accuracy_dollars = 200e9;
    confidence = 0.95;
  }

let check p =
  if p.confidence <= 0.0 || p.confidence >= 1.0 then invalid_arg "Utility: confidence";
  if p.accuracy_dollars <= 0.0 || p.granularity_dollars <= 0.0 || p.sensitivity <= 0.0
  then invalid_arg "Utility: nonpositive policy parameter"

(* P(|Lap(b)| > A) with the paper's convention 1/2 exp(-A/b) <= 1 - c
   gives A/b >= ln (1 / (2 (1-c))), i.e. eps >= sT ln(1/(2(1-c))) / A. *)
let epsilon_for_accuracy p =
  check p;
  let tail = 1.0 -. p.confidence in
  p.sensitivity *. p.granularity_dollars
  *. log (1.0 /. (2.0 *. tail))
  /. p.accuracy_dollars

let runs_per_year p =
  let e = epsilon_for_accuracy p in
  int_of_float (floor (p.epsilon_max /. e))

let noise_scale_dollars p ~epsilon =
  p.sensitivity *. p.granularity_dollars /. epsilon

type accuracy_stats = {
  mean_abs_error : float;
  p95_abs_error : float;
  within_target : float;
}

let monte_carlo prng p ~epsilon ~samples =
  check p;
  if samples < 1 then invalid_arg "Utility.monte_carlo: samples < 1";
  let scale = noise_scale_dollars p ~epsilon in
  let errors =
    Array.init samples (fun _ -> abs_float (Mechanism.laplace prng ~scale))
  in
  let within =
    Array.fold_left (fun a e -> if e <= p.accuracy_dollars then a + 1 else a) 0 errors
  in
  {
    mean_abs_error = Dstress_util.Stats.mean errors;
    p95_abs_error = Dstress_util.Stats.percentile errors 95.0;
    within_target = float_of_int within /. float_of_int samples;
  }

let detection_rate prng p ~epsilon ~crisis_tds ~calm_tds ~threshold ~samples =
  check p;
  let scale = noise_scale_dollars p ~epsilon in
  let count tds =
    let hits = ref 0 in
    for _ = 1 to samples do
      if tds +. Mechanism.laplace prng ~scale > threshold then incr hits
    done;
    float_of_int !hits /. float_of_int samples
  in
  (count crisis_tds, count calm_tds)
