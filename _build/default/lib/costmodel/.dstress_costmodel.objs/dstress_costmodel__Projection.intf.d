lib/costmodel/projection.mli: Dstress_crypto Format
