lib/costmodel/projection.ml: Array Dstress_circuit Dstress_crypto Dstress_risk Dstress_runtime Format Hashtbl Unix
