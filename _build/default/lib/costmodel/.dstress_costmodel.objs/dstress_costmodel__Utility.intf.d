lib/costmodel/utility.mli: Dstress_util
