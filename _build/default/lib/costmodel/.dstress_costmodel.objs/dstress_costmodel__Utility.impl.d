lib/costmodel/utility.ml: Array Dstress_dp Dstress_util
