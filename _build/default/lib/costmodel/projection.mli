(** Scalability projection (Figure 6): estimating end-to-end cost for
    network sizes we cannot run directly, from microbenchmark-calibrated
    unit costs — the same methodology as §5.5 of the paper ("due to our
    limited budget ... we estimate the cost using results from our
    microbenchmarks").

    The model (documented here because the paper does not publish its
    exact extrapolation formula; EXPERIMENTS.md discusses the deviation):

    - {b computation}: each node belongs to ~k+1 blocks (random
      assignment puts every node in its own block plus k others on
      average) and, conservatively, cannot overlap their MPC evaluations
      (§5.5). A block evaluation's per-node wall-clock is the AND count
      times the per-AND OT cost times the 2k sessions each party serves.
      Per iteration: [(k+1) * 2k * ands * ot_unit].
    - {b communication}: a node's own D edges transfer serially,
      [D * transfer_wall(k)] per iteration; transfers of different edges
      across the network proceed in parallel.
    - {b aggregation}: a two-level tree of degree [tree_fanout]; leaf
      groups aggregate in parallel, so two block evaluations' worth of
      wall-clock plus the root noising.
    - {b iterations}: [I = ceil(log2 N)] unless given (Appendix C).

    Traffic per node adds the per-role §5.3 transfer bytes and the
    per-party MPC bytes across block memberships. *)

type units = {
  ot_seconds_per_and_per_pair : float;
      (** seconds of combined sender+receiver work per AND gate per
          ordered party pair (measured) *)
  mpc_bytes_per_and_per_pair : float;
      (** wire bytes per AND gate per ordered pair (~kappa/8 + 2/8) *)
  exp_seconds : float;  (** one modular exponentiation in the target group *)
  element_bytes : int;  (** serialized group element *)
}

val measure_units :
  ?mode:Dstress_crypto.Ot_ext.mode -> Dstress_crypto.Group.t -> seed:string -> units
(** Calibrate from short runs: a batch of OT-extension ANDs and a timed
    batch of exponentiations. *)

type params = {
  n : int;
  d : int;  (** degree bound *)
  k : int;
  l : int;  (** message bits *)
  iterations : int option;  (** default ceil(log2 n) *)
  tree_fanout : int;  (** aggregation tree degree (paper: 100) *)
}

val paper_scale : params
(** N = 1750, D = 100, k = 19, L = 16, two-level tree of degree 100. *)

type projection = {
  params : params;
  iterations_used : int;
  compute_seconds : float;
  communicate_seconds : float;
  aggregate_seconds : float;
  total_seconds : float;
  mpc_bytes_per_node : float;
  transfer_bytes_per_node : float;
  total_bytes_per_node : float;
  update_ands : int;  (** AND gates in the Eisenberg–Noe update circuit *)
}

val project : units -> params -> projection
(** Eisenberg–Noe end-to-end estimate. *)

val update_ands : l:int -> d:int -> int
(** Exact AND-gate count of the Eisenberg–Noe update circuit at the given
    shape (memoized). *)

val transfer_wall_seconds : units -> k:int -> l:int -> float
(** End-to-end wall-clock of one §3.5 transfer: dominated by the (k+1)
    senders' multi-recipient encryptions (parallel across senders), the
    relay's noise encryption and the recipients' decryptions. *)

val pp : Format.formatter -> projection -> unit
