module Group = Dstress_crypto.Group
module Elgamal = Dstress_crypto.Elgamal

type t = {
  node : int;
  secrets : Group.exponent array;
  publics : Group.elt array;
}

let generate prg grp ~node ~bits =
  let pairs = Array.init bits (fun _ -> Elgamal.keygen prg grp) in
  { node; secrets = Array.map fst pairs; publics = Array.map snd pairs }

let bits t = Array.length t.secrets
