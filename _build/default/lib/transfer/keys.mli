(** Per-node ElGamal key material.

    Each node holds [bits] independent key pairs — one per bit position of
    the DStress message datatype. This is the price of the Kurosawa
    ephemeral-key-reuse optimization (§5.1): one shared ephemeral key per
    sender covers all [bits] ciphertexts, but then each bit position must
    be encrypted to a *distinct* public key. *)

type t = {
  node : int;
  secrets : Dstress_crypto.Group.exponent array; (* one per bit position *)
  publics : Dstress_crypto.Group.elt array;
}

val generate : Dstress_crypto.Prg.t -> Dstress_crypto.Group.t -> node:int -> bits:int -> t

val bits : t -> int
