lib/transfer/protocol.ml: Array Dstress_bignum Dstress_crypto Dstress_dp Dstress_mpc Dstress_util Keys List Setup
