lib/transfer/edge_privacy.ml: Dstress_dp Format
