lib/transfer/keys.mli: Dstress_crypto
