lib/transfer/protocol.mli: Dstress_crypto Dstress_mpc Dstress_util Setup
