lib/transfer/setup.ml: Array Buffer Dstress_bignum Dstress_crypto Dstress_util Hashtbl Keys Printf
