lib/transfer/keys.ml: Array Dstress_crypto
