lib/transfer/edge_privacy.mli: Format
