lib/transfer/setup.mli: Dstress_crypto Keys
