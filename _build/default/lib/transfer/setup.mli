(** The one-time trusted-party setup of §3.4.

    The TP (e.g. the Federal Reserve) does three things and leaves:
    + assigns every node [i] a random block [B_i] of [k+1] nodes including
      [i] (so curious nodes cannot stack their own block with Sybils), plus
      a special aggregation block [B_A], and signs the roster;
    + collects every node's public keys and [degree_bound] *neighbor keys*
      (random exponents chosen by the node);
    + issues, for each node [i], [degree_bound] signed *block certificates*
      [C_(i,j)]: the public keys of [B_i]'s members re-randomized with
      [i]'s [j]-th neighbor key. Node [i] hands each certificate to one
      neighbor; the senders behind that neighbor encrypt to the
      re-randomized keys and can never match them to the members' real
      public keys.

    Crucially, the TP only sees nodes, never edges — the graph topology
    stays unknown to it. *)

type certificate = {
  owner : int;  (** node whose block's keys these are *)
  neighbor_slot : int;  (** which of the owner's D neighbor keys re-randomized them *)
  member_keys : Dstress_crypto.Group.elt array array;
      (** [member_keys.(member_index).(bit)] — (k+1) members × L bit positions *)
  signature : Dstress_crypto.Schnorr.signature;
}

type node_state = {
  node : int;
  keys : Keys.t;
  neighbor_keys : Dstress_crypto.Group.exponent array;  (** D entries *)
  block : int array;  (** members of B_node: k+1 node ids, first is node *)
  certificates : certificate array;  (** D certificates for this node's block *)
}

type t = {
  grp : Dstress_crypto.Group.t;
  n : int;
  k : int;
  degree_bound : int;
  bits : int;
  nodes : node_state array;
  agg_block : int array;  (** k+1 node ids *)
  tp_public : Dstress_crypto.Elgamal.public_key;
  roster_signature : Dstress_crypto.Schnorr.signature;
}

val run :
  Dstress_crypto.Prg.t ->
  Dstress_crypto.Group.t ->
  n:int ->
  k:int ->
  degree_bound:int ->
  bits:int ->
  t
(** Raises [Invalid_argument] if [k + 1 > n], [k < 1], [degree_bound < 1]
    or [bits < 1]. *)

val verify_roster : t -> bool
(** Check the TP's signature over the published block list. *)

val verify_certificate : t -> certificate -> bool

val block_of : t -> int -> int array
(** Members of [B_i]. *)

val member_index : t -> block_owner:int -> node:int -> int
(** Position of [node] within [B_block_owner].
    Raises [Not_found] if absent. *)

val setup_traffic_bytes : t -> int
(** Total bytes the setup exchanges (keys up, roster + certificates down) —
    charged once per deployment, reported by the initialization
    microbenchmark. *)
