module Bitvec = Dstress_util.Bitvec
module Prg = Dstress_crypto.Prg
module Meter = Dstress_crypto.Meter
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit

type session = {
  mode : Ot_ext.mode;
  grp : Dstress_crypto.Group.t;
  n : int;
  prgs : Prg.t array; (* per-party local randomness *)
  ot : Ot_ext.session option array array; (* [sender][receiver], lazy *)
  traffic : Traffic.t;
  mutable rounds : int;
  mutable and_gates : int;
  mutable ots : int;
}

let create_session ?(mode = Ot_ext.Crypto) grp ~parties ~seed =
  if parties < 2 then invalid_arg "Gmw.create_session: parties < 2";
  let prgs =
    Array.init parties (fun p -> Prg.of_string (Printf.sprintf "gmw:%s:party:%d" seed p))
  in
  {
    mode;
    grp;
    n = parties;
    prgs;
    ot = Array.make_matrix parties parties None;
    traffic = Traffic.create parties;
    rounds = 0;
    and_gates = 0;
    ots = 0;
  }

let parties s = s.n

(* Fold a pairwise meter (a = sender, b = receiver) into the traffic
   matrix and reset it. *)
let drain_meter s meter ~sender ~receiver =
  Traffic.add s.traffic ~src:sender ~dst:receiver meter.Meter.a_to_b;
  Traffic.add s.traffic ~src:receiver ~dst:sender meter.Meter.b_to_a;
  Meter.reset meter

let ot_session s ~sender ~receiver =
  match s.ot.(sender).(receiver) with
  | Some session -> session
  | None ->
      let meter = Meter.create () in
      let session =
        Ot_ext.setup ~mode:s.mode s.grp meter ~sender_prg:s.prgs.(sender)
          ~receiver_prg:s.prgs.(receiver)
      in
      drain_meter s meter ~sender ~receiver;
      s.ot.(sender).(receiver) <- Some session;
      session

let share_input s v = Sharing.share s.prgs.(0) ~parties:s.n v

(* One communication round: evaluate the batch of AND gates [pending]
   (wire indices) given per-party wire values [vals]. For the cross term
   x_p * y_q of ordered pair (p, q), sender p masks with a fresh random
   bit a and offers (a, a XOR x_p); receiver q selects with y_q and adds
   the result to its share. *)
let and_round s vals pending xs ys =
  let m = Array.length pending in
  (* Local terms x_p * y_p. *)
  for p = 0 to s.n - 1 do
    Array.iteri (fun idx w -> vals.(p).(w) <- xs.(p).(idx) && ys.(p).(idx)) pending
  done;
  for sender = 0 to s.n - 1 do
    for receiver = 0 to s.n - 1 do
      if sender <> receiver then begin
        let session = ot_session s ~sender ~receiver in
        let masks = Array.init m (fun _ -> Prg.bool s.prgs.(sender)) in
        let pairs = Array.init m (fun idx -> (masks.(idx), masks.(idx) <> xs.(sender).(idx))) in
        let choices = Array.init m (fun idx -> ys.(receiver).(idx)) in
        let meter = Meter.create () in
        let outs = Ot_ext.extend_bits session meter ~pairs ~choices in
        drain_meter s meter ~sender ~receiver;
        Array.iteri
          (fun idx w ->
            vals.(sender).(w) <- vals.(sender).(w) <> masks.(idx);
            vals.(receiver).(w) <- vals.(receiver).(w) <> outs.(idx))
          pending;
        s.ots <- s.ots + m
      end
    done
  done;
  s.and_gates <- s.and_gates + m;
  s.rounds <- s.rounds + 1

let eval s circuit ~input_shares =
  if Array.length input_shares <> s.n then
    invalid_arg "Gmw.eval: need one input share vector per party";
  Array.iter
    (fun v ->
      if Bitvec.length v <> circuit.Circuit.num_inputs then
        invalid_arg "Gmw.eval: input share length mismatch")
    input_shares;
  let gates = circuit.Circuit.gates in
  let ngates = Array.length gates in
  let vals = Array.init s.n (fun _ -> Array.make ngates false) in
  let computed = Array.make ngates false in
  (* Repeat: sweep the (topologically ordered) gate list computing every
     local gate whose dependencies are ready; collect the ready AND gates
     and evaluate them as one batched communication round. *)
  let rec sweep () =
    let pending = ref [] in
    Array.iteri
      (fun i g ->
        if not computed.(i) then
          match g with
          | Circuit.Input k ->
              for p = 0 to s.n - 1 do
                vals.(p).(i) <- Bitvec.get input_shares.(p) k
              done;
              computed.(i) <- true
          | Circuit.Const b ->
              vals.(0).(i) <- b;
              computed.(i) <- true
          | Circuit.Not a ->
              if computed.(a) then begin
                for p = 0 to s.n - 1 do
                  vals.(p).(i) <- (if p = 0 then not vals.(p).(a) else vals.(p).(a))
                done;
                computed.(i) <- true
              end
          | Circuit.Xor (a, b) ->
              if computed.(a) && computed.(b) then begin
                for p = 0 to s.n - 1 do
                  vals.(p).(i) <- vals.(p).(a) <> vals.(p).(b)
                done;
                computed.(i) <- true
              end
          | Circuit.And (a, b) ->
              if computed.(a) && computed.(b) then pending := i :: !pending)
      gates;
    match List.rev !pending with
    | [] -> ()
    | ready ->
        let batch = Array.of_list ready in
        let operand sel =
          Array.init s.n (fun p ->
              Array.map
                (fun w ->
                  match gates.(w) with
                  | Circuit.And (a, b) -> vals.(p).(if sel then a else b)
                  | Circuit.Input _ | Circuit.Const _ | Circuit.Not _ | Circuit.Xor _ ->
                      assert false)
                batch)
        in
        let xs = operand true and ys = operand false in
        and_round s vals batch xs ys;
        Array.iter (fun w -> computed.(w) <- true) batch;
        sweep ()
  in
  sweep ();
  (* Anything still uncomputed would mean a cyclic circuit, which
     Circuit.make rules out. *)
  assert (Array.for_all (fun c -> c) computed);
  Array.init s.n (fun p ->
      Bitvec.init (Array.length circuit.Circuit.outputs) (fun o ->
          vals.(p).(circuit.Circuit.outputs.(o))))

let reveal s shares =
  let bits = Bitvec.length shares.(0) in
  let bytes = (bits + 7) / 8 in
  (* All-to-all broadcast of shares. *)
  for src = 0 to s.n - 1 do
    for dst = 0 to s.n - 1 do
      if src <> dst then Traffic.add s.traffic ~src ~dst bytes
    done
  done;
  Sharing.reconstruct shares

let traffic s = s.traffic

let reset_traffic s = Traffic.clear s.traffic

let rounds s = s.rounds
let and_gates_evaluated s = s.and_gates
let ots_performed s = s.ots
