lib/mpc/traffic.ml: Array Format
