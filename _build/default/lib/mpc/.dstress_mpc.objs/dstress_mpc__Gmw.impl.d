lib/mpc/gmw.ml: Array Dstress_circuit Dstress_crypto Dstress_util List Printf Sharing Traffic
