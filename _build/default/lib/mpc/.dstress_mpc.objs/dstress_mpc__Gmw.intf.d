lib/mpc/gmw.mli: Dstress_circuit Dstress_crypto Dstress_util Traffic
