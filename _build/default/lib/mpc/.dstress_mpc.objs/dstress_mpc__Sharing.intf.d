lib/mpc/sharing.mli: Dstress_crypto Dstress_util
