lib/mpc/traffic.mli: Format
