lib/mpc/sharing.ml: Array Dstress_crypto Dstress_util
