(** XOR secret sharing of bit vectors.

    DStress keeps every vertex state and every message XOR-shared across
    the k+1 members of a block (§3.3): the secret is the XOR of all
    shares, so any k shares are uniformly random and reveal nothing. *)

val share : Dstress_crypto.Prg.t -> parties:int -> Dstress_util.Bitvec.t -> Dstress_util.Bitvec.t array
(** [share prg ~parties v] draws [parties - 1] uniform vectors and sets the
    last share so the XOR equals [v]. Raises [Invalid_argument] if
    [parties < 1]. *)

val reconstruct : Dstress_util.Bitvec.t array -> Dstress_util.Bitvec.t
(** XOR of all shares. Raises [Invalid_argument] on an empty array. *)

val share_int : Dstress_crypto.Prg.t -> parties:int -> bits:int -> int -> Dstress_util.Bitvec.t array
(** Shares the two's-complement encoding of an integer. *)

val reconstruct_int : Dstress_util.Bitvec.t array -> int
(** Unsigned reconstruction. *)

val subshare :
  Dstress_crypto.Prg.t -> parties:int -> Dstress_util.Bitvec.t -> Dstress_util.Bitvec.t array
(** Alias of {!share} with the §3.5 name: each block member re-shares its
    share into subshares, one per member of the receiving block. *)
