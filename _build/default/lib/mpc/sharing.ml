module Bitvec = Dstress_util.Bitvec
module Prg = Dstress_crypto.Prg

let share prg ~parties v =
  if parties < 1 then invalid_arg "Sharing.share: parties < 1";
  let n = Bitvec.length v in
  let shares = Array.init (parties - 1) (fun _ -> Prg.bits prg n) in
  let last = Array.fold_left Bitvec.xor v shares in
  Array.append shares [| last |]

let reconstruct shares =
  if Array.length shares = 0 then invalid_arg "Sharing.reconstruct: empty";
  Bitvec.xor_all (Array.to_list shares)

let share_int prg ~parties ~bits v = share prg ~parties (Bitvec.of_int ~bits v)

let reconstruct_int shares = Bitvec.to_int (reconstruct shares)

let subshare = share
