module Prng = Dstress_util.Prng

let laplace prng ~scale =
  if scale <= 0.0 then invalid_arg "Mechanism.laplace: scale <= 0";
  (* Inverse-CDF: U uniform on (-1/2, 1/2); X = -scale * sgn(U) * ln(1 - 2|U|). *)
  let u = Prng.float prng -. 0.5 in
  let sign = if u < 0.0 then -1.0 else 1.0 in
  let magnitude = -.scale *. log (1.0 -. (2.0 *. abs_float u)) in
  sign *. magnitude

let laplace_mechanism prng ~sensitivity ~epsilon v =
  if sensitivity <= 0.0 || epsilon <= 0.0 then
    invalid_arg "Mechanism.laplace_mechanism: nonpositive parameter";
  v +. laplace prng ~scale:(sensitivity /. epsilon)

let geometric_one_sided prng ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Mechanism.geometric_one_sided: alpha out of (0,1)";
  (* Inversion: k = floor(ln U / ln alpha) has P(k) = (1-a) a^k. Guard
     against U = 0. *)
  let rec draw () =
    let u = Prng.float prng in
    if u = 0.0 then draw () else int_of_float (floor (log u /. log alpha))
  in
  draw ()

let geometric_two_sided prng ~alpha =
  geometric_one_sided prng ~alpha - geometric_one_sided prng ~alpha

let geometric_mechanism prng ~sensitivity ~epsilon v =
  if sensitivity <= 0 || epsilon <= 0.0 then
    invalid_arg "Mechanism.geometric_mechanism: nonpositive parameter";
  let alpha = exp (-.epsilon /. float_of_int sensitivity) in
  v + geometric_two_sided prng ~alpha

let transfer_noise prng ~alpha ~delta =
  if delta <= 0 then invalid_arg "Mechanism.transfer_noise: delta <= 0";
  let alpha' = alpha ** (2.0 /. float_of_int delta) in
  2 * geometric_two_sided prng ~alpha:alpha'

let alpha_of_epsilon ~epsilon = exp (-.epsilon)
let epsilon_of_alpha ~alpha = -.log alpha

let cdf_two_sided ~alpha k =
  if k < 0 then 0.0
  else begin
    (* P(|Y| <= k) = (1-a)/(1+a) * (1 + 2 * sum_{j=1..k} a^j)
                   = (1-a)/(1+a) + 2a(1 - a^k)/(1+a). *)
    let base = (1.0 -. alpha) /. (1.0 +. alpha) in
    base +. (2.0 *. alpha *. (1.0 -. (alpha ** float_of_int k)) /. (1.0 +. alpha))
  end

let failure_probability ~alpha ~table_entries =
  let half = float_of_int table_entries /. 2.0 in
  let p = ((2.0 *. (alpha ** half)) +. alpha -. 1.0) /. (1.0 +. alpha) in
  if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let max_alpha_for_failure ~table_entries ~target =
  if target <= 0.0 || target >= 1.0 then
    invalid_arg "Mechanism.max_alpha_for_failure: target out of (0,1)";
  (* failure_probability is increasing in alpha; bisect on [0, 1). *)
  let rec bisect lo hi iters =
    if iters = 0 then lo
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if failure_probability ~alpha:mid ~table_entries <= target then
        bisect mid hi (iters - 1)
      else bisect lo mid (iters - 1)
    end
  in
  bisect 0.0 1.0 200
