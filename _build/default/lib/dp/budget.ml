type entry = { label : string; epsilon : float }

type t = {
  epsilon_max : float;
  mutable spent : float;
  mutable entries : entry list; (* reversed *)
}

let create ~epsilon_max =
  if epsilon_max <= 0.0 then invalid_arg "Budget.create: epsilon_max <= 0";
  { epsilon_max; spent = 0.0; entries = [] }

let epsilon_max t = t.epsilon_max
let spent t = t.spent
let remaining t = t.epsilon_max -. t.spent

let spend t ~label ~epsilon =
  if epsilon <= 0.0 then invalid_arg "Budget.spend: epsilon <= 0";
  if t.spent +. epsilon > t.epsilon_max +. 1e-12 then
    Error
      (Printf.sprintf "budget exhausted: requested %.6g, remaining %.6g of %.6g" epsilon
         (remaining t) t.epsilon_max)
  else begin
    t.spent <- t.spent +. epsilon;
    t.entries <- { label; epsilon } :: t.entries;
    Ok ()
  end

let ledger t = List.rev t.entries

let replenish t =
  t.spent <- 0.0;
  t.entries <- []

let pp ppf t =
  Format.fprintf ppf "budget %.4g / %.4g spent (%d entries)" t.spent t.epsilon_max
    (List.length t.entries)
