(** Privacy-budget accounting.

    DStress tracks two budgets (§4.5, Appendix B): the query budget spent
    by released outputs (sequential composition: epsilons add) and the
    edge-privacy budget spent by the noised bit-sums of the transfer
    protocol. Both are instances of this accountant. *)

type t

type entry = { label : string; epsilon : float }

val create : epsilon_max:float -> t
(** Raises [Invalid_argument] if [epsilon_max <= 0]. *)

val epsilon_max : t -> float
val spent : t -> float
val remaining : t -> float

val spend : t -> label:string -> epsilon:float -> (unit, string) result
(** Sequential composition. [Error] (with a human-readable reason) when the
    request does not fit in the remaining budget; nothing is charged in
    that case. Raises [Invalid_argument] if [epsilon <= 0]. *)

val ledger : t -> entry list
(** Spends in chronological order. *)

val replenish : t -> unit
(** Reset the budget (the paper's "replenish once per year" policy, §4.5).
    The ledger is cleared. *)

val pp : Format.formatter -> t -> unit
