(** Differential-privacy release mechanisms.

    Two samplers back the system:
    - the continuous {!laplace} mechanism of Dwork et al. (TCC'06), used in
      the §4.5 utility analysis and as the reference distribution;
    - the discrete two-sided {!geometric} mechanism of Ghosh, Roughgarden &
      Sundararajan (SICOMP'12), used on the wire: the transfer protocol
      adds [2 * Geo(alpha^(2/(k+1)))] to every forwarded bit-sum (§3.5
      final protocol), and the aggregation block adds discrete noise inside
      MPC (our substitution for the paper's Laplace circuit — a two-sided
      geometric with [alpha = exp(-eps/s)] gives the same [eps]-DP
      guarantee for integer queries of sensitivity [s]).

    All samplers draw from an explicit {!Dstress_util.Prng.t}, keeping runs
    reproducible. *)

val laplace : Dstress_util.Prng.t -> scale:float -> float
(** Sample from Laplace(0, scale). Raises [Invalid_argument] if
    [scale <= 0]. *)

val laplace_mechanism :
  Dstress_util.Prng.t -> sensitivity:float -> epsilon:float -> float -> float
(** [laplace_mechanism prng ~sensitivity ~epsilon v] is
    [v + Laplace(sensitivity / epsilon)]. *)

val geometric_one_sided : Dstress_util.Prng.t -> alpha:float -> int
(** Number of failures before the first success of a Bernoulli(1 - alpha)
    process: [P(X = k) = (1 - alpha) alpha^k]. Requires
    [0 < alpha < 1]. *)

val geometric_two_sided : Dstress_util.Prng.t -> alpha:float -> int
(** Two-sided geometric: [P(Y = d) = (1-alpha)/(1+alpha) * alpha^|d|],
    sampled as the difference of two one-sided draws. *)

val geometric_mechanism :
  Dstress_util.Prng.t -> sensitivity:int -> epsilon:float -> int -> int
(** [geometric_mechanism prng ~sensitivity ~epsilon v] adds two-sided
    geometric noise with [alpha = exp (-. epsilon /. sensitivity)] —
    [eps]-DP for integer queries with the given sensitivity. *)

val transfer_noise : Dstress_util.Prng.t -> alpha:float -> delta:int -> int
(** The §3.5 wire noise: an *even* random value [2 * Y] with
    [Y ~ Geo_two_sided(alpha^(2/delta))], where [delta = k + 1] is the
    sensitivity of a bit-sum over one block. Evenness preserves the parity
    the recipients decode. *)

val alpha_of_epsilon : epsilon:float -> float
(** [exp (-epsilon)] — the paper's correspondence [eps = -ln alpha]. *)

val epsilon_of_alpha : alpha:float -> float

val cdf_two_sided : alpha:float -> int -> float
(** [cdf_two_sided ~alpha k] is [P(|Y| <= k)] for the two-sided geometric
    (used to build lookup thresholds and failure probabilities). *)

val failure_probability : alpha:float -> table_entries:int -> float
(** Appendix B: probability that a single transfer's noise falls outside a
    decryption lookup table with [table_entries] entries (range
    [\[-N_l/2, N_l/2\]]), i.e. [P_fail = (2 alpha^(N_l/2) + alpha - 1) /
    (1 + alpha)] clamped to [\[0, 1\]]. *)

val max_alpha_for_failure : table_entries:int -> target:float -> float
(** Appendix B inequality (1): the largest [alpha] such that
    [failure_probability <= target], found by bisection. *)
