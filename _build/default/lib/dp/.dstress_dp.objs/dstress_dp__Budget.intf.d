lib/dp/budget.mli: Format
