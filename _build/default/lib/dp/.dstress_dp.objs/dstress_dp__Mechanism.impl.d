lib/dp/mechanism.ml: Dstress_util
