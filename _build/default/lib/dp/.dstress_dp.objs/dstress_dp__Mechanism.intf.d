lib/dp/mechanism.mli: Dstress_util
