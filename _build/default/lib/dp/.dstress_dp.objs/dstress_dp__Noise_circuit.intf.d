lib/dp/noise_circuit.mli: Dstress_circuit
