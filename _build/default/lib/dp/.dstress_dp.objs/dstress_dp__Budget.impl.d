lib/dp/budget.ml: Format List Printf
