lib/dp/noise_circuit.ml: Array Dstress_circuit Float List Mechanism
