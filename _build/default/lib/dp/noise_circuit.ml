module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word

let default_uniform_bits = 32

let check_params ~alpha ~max_magnitude =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Noise_circuit: alpha out of (0,1)";
  if max_magnitude < 1 then invalid_arg "Noise_circuit: max_magnitude < 1"

let thresholds ~alpha ~max_magnitude ~uniform_bits =
  check_params ~alpha ~max_magnitude;
  let scale = 2.0 ** float_of_int uniform_bits in
  let cap = (1 lsl uniform_bits) - 1 in
  Array.init max_magnitude (fun k ->
      let t = Float.round (Mechanism.cdf_two_sided ~alpha k *. scale) in
      let t = int_of_float t in
      if t > cap then cap else t)

(* The magnitude is sum_k [uniform >= T_k]: the uniform word clears the
   first m thresholds iff the magnitude is at least m... precisely,
   P(magnitude > k) = P(U >= T_k) = 1 - F(k). *)
let magnitude b ~alpha ~max_magnitude ~uniform =
  check_params ~alpha ~max_magnitude;
  let ubits = Word.width uniform in
  let ts = thresholds ~alpha ~max_magnitude ~uniform_bits:ubits in
  let out_bits =
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    max 1 (width max_magnitude 0)
  in
  let indicator k =
    let threshold = Word.constant b ~bits:ubits ts.(k) in
    [| Word.ge b uniform threshold |]
  in
  let terms = List.init max_magnitude indicator in
  Word.sum b ~bits:out_bits terms

let signed_noise b ~alpha ~max_magnitude ~bits ~uniform ~sign =
  let mag = magnitude b ~alpha ~max_magnitude ~uniform in
  if Word.width mag > bits then
    invalid_arg "Noise_circuit.signed_noise: bits too narrow for max_magnitude";
  let mag = Word.zero_extend b mag ~bits in
  let negated = Word.negate b mag in
  Word.mux b sign negated mag

let add_noise b ~alpha ~max_magnitude ~value ~uniform ~sign =
  let bits = Word.width value in
  let noise = signed_noise b ~alpha ~max_magnitude ~bits ~uniform ~sign in
  Word.add b value noise
