(** In-circuit noise generation.

    The aggregation block must add DP noise *inside* MPC so that no party
    ever sees the exact aggregate (§3.6: the members of [B_A] combine
    random shares into a seed and draw the noise term in-circuit). The
    paper cites the Dwork et al. (EUROCRYPT'06) circuit design; this module
    implements the same idea in comparator form: uniform random bits
    (XOR-contributed by all block members, so they are uniform as long as
    one member is honest) are compared against precomputed cumulative
    thresholds of the target distribution, and the count of exceeded
    thresholds is the noise magnitude.

    The target distribution is the two-sided geometric with
    [alpha = exp(-epsilon / sensitivity)] — the discrete analogue of the
    paper's Laplace draw, giving the same [eps]-DP guarantee for the
    integer-valued TDS. The distribution is truncated at [max_magnitude]
    (the tail mass [alpha^max_magnitude] is the truncation error; callers
    size it like the Appendix-B lookup-table analysis). *)

val default_uniform_bits : int
(** Uniform input width per draw (32): threshold resolution 2^-32. *)

val magnitude :
  Dstress_circuit.Builder.t ->
  alpha:float ->
  max_magnitude:int ->
  uniform:Dstress_circuit.Word.t ->
  Dstress_circuit.Word.t
(** [magnitude b ~alpha ~max_magnitude ~uniform] counts how many of the
    [max_magnitude] cumulative thresholds the uniform word exceeds; the
    result (width [ceil(log2(max_magnitude+1))]) is geometrically
    distributed with parameter [alpha], saturating at [max_magnitude].
    Raises [Invalid_argument] for [alpha] outside (0,1) or
    [max_magnitude < 1]. *)

val signed_noise :
  Dstress_circuit.Builder.t ->
  alpha:float ->
  max_magnitude:int ->
  bits:int ->
  uniform:Dstress_circuit.Word.t ->
  sign:Dstress_circuit.Builder.wire ->
  Dstress_circuit.Word.t
(** Two's-complement noise of [bits] bits: [sign] flips the magnitude.
    (A symmetric distribution is insensitive to the sign convention at 0.) *)

val add_noise :
  Dstress_circuit.Builder.t ->
  alpha:float ->
  max_magnitude:int ->
  value:Dstress_circuit.Word.t ->
  uniform:Dstress_circuit.Word.t ->
  sign:Dstress_circuit.Builder.wire ->
  Dstress_circuit.Word.t
(** [value + noise], wrapping at the width of [value]. *)

val thresholds : alpha:float -> max_magnitude:int -> uniform_bits:int -> int array
(** The threshold constants (exposed for tests): entry [k] is
    [round(P(|Y| <= k) * 2^uniform_bits)]. *)
