module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Exp_elgamal = Dstress_crypto.Exp_elgamal
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Traffic = Dstress_mpc.Traffic
module Sharing = Dstress_mpc.Sharing
module Gmw = Dstress_mpc.Gmw
module Setup = Dstress_transfer.Setup
module Protocol = Dstress_transfer.Protocol
module Noise_circuit = Dstress_dp.Noise_circuit

type aggregation = Single_block | Two_level of int

type config = {
  grp : Group.t;
  k : int;
  degree_bound : int;
  ot_mode : Ot_ext.mode;
  transfer_alpha : float;
  table_radius : int;
  aggregation : aggregation;
  seed : string;
}

let default_config ?(seed = "dstress") grp ~k ~degree_bound =
  {
    grp;
    k;
    degree_bound;
    ot_mode = Ot_ext.Simulation;
    transfer_alpha = 0.5;
    table_radius = 120;
    aggregation = Single_block;
    seed;
  }

type phase = Setup | Initialization | Computation | Communication | Aggregation

let phase_name = function
  | Setup -> "setup"
  | Initialization -> "initialization"
  | Computation -> "computation"
  | Communication -> "communication"
  | Aggregation -> "aggregation"

let all_phases = [ Setup; Initialization; Computation; Communication; Aggregation ]

type report = {
  output : int;
  iterations : int;
  traffic : Traffic.t;
  phase_bytes : (phase * int) list;
  phase_seconds : (phase * float) list;
  transfer_failures : int;
  mpc_rounds : int;
  mpc_and_gates : int;
  mpc_ots : int;
  update_stats : Circuit.stats;
}

(* Accumulates wall-clock seconds and wire bytes per phase. *)
type accounting = {
  global : Traffic.t;
  seconds : (phase, float ref) Hashtbl.t;
  bytes : (phase, int ref) Hashtbl.t;
}

let make_accounting n =
  let seconds = Hashtbl.create 8 and bytes = Hashtbl.create 8 in
  List.iter
    (fun p ->
      Hashtbl.replace seconds p (ref 0.0);
      Hashtbl.replace bytes p (ref 0))
    all_phases;
  { global = Traffic.create n; seconds; bytes }

let in_phase acc phase f =
  let t0 = Unix.gettimeofday () in
  let b0 = Traffic.total acc.global in
  let result = f () in
  let sec = Hashtbl.find acc.seconds phase and byt = Hashtbl.find acc.bytes phase in
  sec := !sec +. (Unix.gettimeofday () -. t0);
  byt := !byt + (Traffic.total acc.global - b0);
  result

(* Fold a block-local GMW traffic matrix into the global one. *)
let merge_block_traffic acc session members =
  Traffic.iter_nonzero (Gmw.traffic session) (fun ~src ~dst v ->
      Traffic.add acc.global ~src:members.(src) ~dst:members.(dst) v);
  Gmw.reset_traffic session

(* Re-share values held as XOR shares in source blocks into a destination
   block: each source member subshares its share and sends one piece to
   each destination member, who XORs everything received (§3.6). Returns
   the destination members' shares, one Bitvec per member per value. *)
let reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values =
  let payload_bytes bits = ((bits + 7) / 8) + ebytes in
  List.map2
    (fun src_block (shares : Bitvec.t array) ->
      let bits = Bitvec.length shares.(0) in
      let pieces = Array.map (fun s -> Sharing.subshare prg ~parties:kp1 s) shares in
      Array.iteri
        (fun x _ ->
          Array.iter
            (fun y_node ->
              Traffic.add acc.global ~src:src_block.(x) ~dst:y_node (payload_bytes bits))
            dst_members)
        pieces;
      Array.init kp1 (fun y ->
          Bitvec.xor_all (Array.to_list (Array.map (fun p -> p.(y)) pieces))))
    src_blocks values

(* Input shares for the noise section of a noised circuit: every member
   contributes uniform bits; the XOR (the cleartext nobody knows) is
   uniform as long as one member is honest. *)
let noise_input_shares prg ~kp1 =
  let ubits = Noise_circuit.default_uniform_bits in
  Array.init kp1 (fun _ -> Prg.bits prg (ubits + 1))

let run cfg p ~graph ~initial_states =
  let n = Graph.n graph in
  let kp1 = cfg.k + 1 in
  let d = cfg.degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Array.length initial_states <> n then
    invalid_arg "Engine.run: one initial state per vertex required";
  Array.iter
    (fun s -> if Bitvec.length s <> sb then invalid_arg "Engine.run: bad state width")
    initial_states;
  if Graph.max_degree graph > d then invalid_arg "Engine.run: vertex degree exceeds bound";
  let prg = Prg.of_string ("engine:" ^ cfg.seed) in
  let noise_prng = Prng.create (Int64.of_int (Hashtbl.hash ("noise:" ^ cfg.seed))) in
  let acc = make_accounting n in
  let ebytes = Group.element_bytes cfg.grp in
  (* --- Setup --------------------------------------------------- *)
  let setup =
    in_phase acc Setup (fun () ->
        let s = Setup.run prg cfg.grp ~n ~k:cfg.k ~degree_bound:d ~bits:l in
        (* The one-time setup exchange is charged to the TP<->node links;
           spread uniformly for per-node reporting. *)
        let per_node = Setup.setup_traffic_bytes s / n in
        for i = 0 to n - 1 do
          Traffic.add acc.global ~src:i ~dst:i per_node
        done;
        s)
  in
  let table =
    Exp_elgamal.Table.make cfg.grp ~lo:(-cfg.table_radius) ~hi:(kp1 + cfg.table_radius)
  in
  let params = { Protocol.alpha = cfg.transfer_alpha; table } in
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let sessions =
    Array.init n (fun i ->
        Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
          ~seed:(Printf.sprintf "%s:block:%d" cfg.seed i))
  in
  let zero_msg_shares () = Array.init kp1 (fun _ -> Bitvec.create l false) in
  (* --- Initialization ------------------------------------------ *)
  let state_shares =
    in_phase acc Initialization (fun () ->
        Array.init n (fun i ->
            let shares = Sharing.share prg ~parties:kp1 initial_states.(i) in
            (* Node i distributes state and D no-op message shares to the
               other members of its block. *)
            let block = Setup.block_of setup i in
            let bytes = ((sb + (d * l) + 7) / 8) + ebytes in
            Array.iter
              (fun member -> if member <> i then Traffic.add acc.global ~src:i ~dst:member bytes)
              block;
            shares))
  in
  let msg_in = Array.init n (fun _ -> Array.init d (fun _ -> zero_msg_shares ())) in
  let out_msgs = Array.init n (fun _ -> Array.init d (fun _ -> zero_msg_shares ())) in
  let failures = ref 0 in
  (* --- Computation step ----------------------------------------- *)
  let compute () =
    in_phase acc Computation (fun () ->
        for i = 0 to n - 1 do
          let input_shares =
            Array.init kp1 (fun m ->
                Bitvec.concat
                  (state_shares.(i).(m)
                  :: List.init d (fun s -> msg_in.(i).(s).(m))))
          in
          let out = Gmw.eval sessions.(i) update_c ~input_shares in
          Array.iteri
            (fun m vec ->
              state_shares.(i).(m) <- Bitvec.sub vec ~pos:0 ~len:sb;
              for s = 0 to d - 1 do
                out_msgs.(i).(s).(m) <- Bitvec.sub vec ~pos:(sb + (s * l)) ~len:l
              done)
            out;
          merge_block_traffic acc sessions.(i) (Setup.block_of setup i)
        done)
  in
  (* --- Communication step ---------------------------------------- *)
  let communicate () =
    in_phase acc Communication (fun () ->
        (* Reset all inboxes to no-op shares; real messages overwrite. *)
        for i = 0 to n - 1 do
          for s = 0 to d - 1 do
            msg_in.(i).(s) <- zero_msg_shares ()
          done
        done;
        List.iter
          (fun (i, j) ->
            let slot_out = Graph.out_slot graph ~src:i ~dst:j in
            let shares = Array.copy out_msgs.(i).(slot_out) in
            let nslot = Graph.neighbor_slot graph ~owner:j ~other:i in
            let outcome =
              Protocol.transfer params ~prg ~noise:noise_prng ~traffic:acc.global
                ~variant:Protocol.Final ~setup ~sender:i ~receiver:j ~neighbor_slot:nslot
                ~shares
            in
            failures := !failures + outcome.Protocol.failures;
            msg_in.(j).(Graph.in_slot graph ~src:i ~dst:j) <- outcome.Protocol.shares)
          (Graph.edges graph))
  in
  for _it = 1 to p.Vertex_program.iterations do
    compute ();
    communicate ()
  done;
  (* Final computation step (§3.6): process the last round of messages. *)
  compute ();
  (* --- Aggregation + noising ------------------------------------ *)
  let agg_sessions = ref [] in
  let eval_in_block ~label members circuit input_shares =
    let session =
      Gmw.create_session ~mode:cfg.ot_mode cfg.grp ~parties:kp1
        ~seed:(Printf.sprintf "%s:agg:%s" cfg.seed label)
    in
    agg_sessions := session :: !agg_sessions;
    let out = Gmw.eval session circuit ~input_shares in
    merge_block_traffic acc session members;
    (session, out)
  in
  let output_bits =
    in_phase acc Aggregation (fun () ->
        let concat_inputs per_value_shares extra =
          (* per_value_shares : Bitvec array list (one array of kp1 shares
             per value); build per-member concatenation, appending the
             per-member extra bits. *)
          Array.init kp1 (fun m ->
              Bitvec.concat
                (List.map (fun shares -> (shares : Bitvec.t array).(m)) per_value_shares
                @ [ extra.(m) ]))
        in
        match cfg.aggregation with
        | Single_block ->
            let dst_members = setup.Setup.agg_block in
            let src_blocks = List.init n (fun i -> Setup.block_of setup i) in
            let values = List.init n (fun i -> state_shares.(i)) in
            let reshared = reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values in
            let noise = noise_input_shares prg ~kp1 in
            let inputs = concat_inputs reshared noise in
            let circuit = Vertex_program.aggregate_circuit p ~count:n in
            let session, out = eval_in_block ~label:"root" dst_members circuit inputs in
            let revealed = Gmw.reveal session out in
            merge_block_traffic acc session dst_members;
            revealed
        | Two_level fanout ->
            if fanout < 1 then invalid_arg "Engine.run: bad aggregation fan-out";
            let groups =
              let rec chunks start =
                if start >= n then []
                else begin
                  let len = min fanout (n - start) in
                  List.init len (fun o -> start + o) :: chunks (start + len)
                end
              in
              chunks 0
            in
            let empty_extra = Array.init kp1 (fun _ -> Bitvec.create 0 false) in
            let partials =
              List.mapi
                (fun gi group ->
                  let leaf_members = Setup.block_of setup (List.hd group) in
                  let src_blocks = List.map (Setup.block_of setup) group in
                  let values = List.map (fun i -> state_shares.(i)) group in
                  let reshared =
                    reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members:leaf_members values
                  in
                  let inputs = concat_inputs reshared empty_extra in
                  let circuit =
                    Vertex_program.partial_aggregate_circuit p ~count:(List.length group)
                  in
                  let _, out =
                    eval_in_block ~label:(Printf.sprintf "leaf:%d" gi) leaf_members circuit
                      inputs
                  in
                  (leaf_members, out))
                groups
            in
            let dst_members = setup.Setup.agg_block in
            let src_blocks = List.map fst partials in
            let values = List.map snd partials in
            let reshared = reshare acc prg ~kp1 ~ebytes ~src_blocks ~dst_members values in
            let noise = noise_input_shares prg ~kp1 in
            let inputs = concat_inputs reshared noise in
            let circuit =
              Vertex_program.combine_circuit p ~count:(List.length partials) ~noised:true
            in
            let session, out = eval_in_block ~label:"root" dst_members circuit inputs in
            let revealed = Gmw.reveal session out in
            merge_block_traffic acc session dst_members;
            revealed)
  in
  let mpc_sessions = Array.to_list sessions @ !agg_sessions in
  {
    output = Bitvec.to_int_signed output_bits;
    iterations = p.Vertex_program.iterations;
    traffic = acc.global;
    phase_bytes = List.map (fun ph -> (ph, !(Hashtbl.find acc.bytes ph))) all_phases;
    phase_seconds = List.map (fun ph -> (ph, !(Hashtbl.find acc.seconds ph))) all_phases;
    transfer_failures = !failures;
    mpc_rounds = List.fold_left (fun a s -> a + Gmw.rounds s) 0 mpc_sessions;
    mpc_and_gates = List.fold_left (fun a s -> a + Gmw.and_gates_evaluated s) 0 mpc_sessions;
    mpc_ots = List.fold_left (fun a s -> a + Gmw.ots_performed s) 0 mpc_sessions;
    update_stats = Circuit.stats update_c;
  }

(* ------------------------------------------------------------------ *)
(* Plaintext reference executor                                        *)
(* ------------------------------------------------------------------ *)

let run_plaintext p ~degree_bound ~graph ~initial_states =
  let n = Graph.n graph in
  let d = degree_bound in
  let sb = p.Vertex_program.state_bits and l = p.Vertex_program.message_bits in
  if Graph.max_degree graph > d then
    invalid_arg "Engine.run_plaintext: vertex degree exceeds bound";
  let update_c = Vertex_program.update_circuit p ~degree:d in
  let states = Array.map Bitvec.to_bool_array initial_states in
  let msg_in = Array.init n (fun _ -> Array.make_matrix d l false) in
  let out_msgs = Array.init n (fun _ -> Array.make_matrix d l false) in
  let compute () =
    for i = 0 to n - 1 do
      let inputs = Array.concat (states.(i) :: Array.to_list msg_in.(i)) in
      let out = Circuit.eval update_c inputs in
      states.(i) <- Array.sub out 0 sb;
      for s = 0 to d - 1 do
        out_msgs.(i).(s) <- Array.sub out (sb + (s * l)) l
      done
    done
  in
  let communicate () =
    for i = 0 to n - 1 do
      for s = 0 to d - 1 do
        msg_in.(i).(s) <- Array.make l false
      done
    done;
    List.iter
      (fun (i, j) ->
        msg_in.(j).(Graph.in_slot graph ~src:i ~dst:j) <-
          Array.copy out_msgs.(i).(Graph.out_slot graph ~src:i ~dst:j))
      (Graph.edges graph)
  in
  for _it = 1 to p.Vertex_program.iterations do
    compute ();
    communicate ()
  done;
  compute ();
  let agg = Vertex_program.aggregate_circuit p ~count:n in
  let noise_zeros = Array.make (Noise_circuit.default_uniform_bits + 1) false in
  let inputs = Array.concat (Array.to_list states @ [ noise_zeros ]) in
  let out = Circuit.eval agg inputs in
  Bitvec.to_int_signed (Bitvec.of_bool_array out)

let pp_report ppf r =
  let mb b = float_of_int b /. 1048576.0 in
  Format.fprintf ppf "@[<v>output: %d@,transfer failures: %d@,MPC: %d rounds, %d AND gates, %d OTs@,update circuit: %a@,"
    r.output r.transfer_failures r.mpc_rounds r.mpc_and_gates r.mpc_ots Circuit.pp_stats
    r.update_stats;
  List.iter
    (fun (ph, b) ->
      let s = List.assoc ph r.phase_seconds in
      Format.fprintf ppf "%-14s %8.3f s %10.3f MB@," (phase_name ph) s (mb b))
    r.phase_bytes;
  Format.fprintf ppf "total traffic: %.3f MB (mean %.3f MB/node)@]"
    (mb (Traffic.total r.traffic))
    (mb (int_of_float (Traffic.mean_per_node r.traffic)))
