(** Directed property graphs, the substrate of every vertex program.

    Vertex [i] is owned by participant [i]; the edge set is the private
    topology the transfer protocol hides. Messages flow along directed
    edges: one message per out-edge per communication step. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** Raises [Invalid_argument] on out-of-range endpoints, self-loops or
    duplicate edges. *)

val n : t -> int
val edges : t -> (int * int) list
(** In deterministic order. *)

val out_neighbors : t -> int -> int list
(** Sorted ascending. *)

val in_neighbors : t -> int -> int list

val neighbors : t -> int -> int list
(** Union of in- and out-neighbors, sorted — the certificate recipients. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val max_degree : t -> int
(** Maximum over vertices of [List.length (neighbors t v)] — must not
    exceed the system's degree bound D. *)

val has_edge : t -> int -> int -> bool

val out_slot : t -> src:int -> dst:int -> int
(** Index of [dst] in [src]'s sorted out-neighbor list.
    Raises [Not_found] if the edge is absent. *)

val in_slot : t -> src:int -> dst:int -> int
(** Index of [src] in [dst]'s sorted in-neighbor list. *)

val neighbor_slot : t -> owner:int -> other:int -> int
(** Index of [other] in [owner]'s undirected neighbor list — selects which
    block certificate [owner] handed to [other]. *)

val pp : Format.formatter -> t -> unit
