type t = {
  n : int;
  edge_list : (int * int) list;
  out_adj : int list array; (* sorted *)
  in_adj : int list array;
  und_adj : int list array; (* sorted union *)
}

let create ~n ~edges =
  if n < 1 then invalid_arg "Graph.create: n < 1";
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Graph.create: endpoint out of range";
      if a = b then invalid_arg "Graph.create: self-loop";
      if Hashtbl.mem seen (a, b) then invalid_arg "Graph.create: duplicate edge";
      Hashtbl.replace seen (a, b) ())
    edges;
  let out_adj = Array.make n [] and in_adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      out_adj.(a) <- b :: out_adj.(a);
      in_adj.(b) <- a :: in_adj.(b))
    edges;
  let sort = List.sort_uniq compare in
  let out_adj = Array.map sort out_adj and in_adj = Array.map sort in_adj in
  let und_adj = Array.init n (fun i -> sort (out_adj.(i) @ in_adj.(i))) in
  { n; edge_list = edges; out_adj; in_adj; und_adj }

let n t = t.n
let edges t = t.edge_list
let out_neighbors t v = t.out_adj.(v)
let in_neighbors t v = t.in_adj.(v)
let neighbors t v = t.und_adj.(v)
let out_degree t v = List.length t.out_adj.(v)
let in_degree t v = List.length t.in_adj.(v)

let max_degree t =
  let best = ref 0 in
  Array.iter (fun l -> best := max !best (List.length l)) t.und_adj;
  !best

let has_edge t a b = List.mem b t.out_adj.(a)

let index_of lst x =
  let rec go i = function
    | [] -> raise Not_found
    | y :: rest -> if y = x then i else go (i + 1) rest
  in
  go 0 lst

let out_slot t ~src ~dst = index_of t.out_adj.(src) dst
let in_slot t ~src ~dst = index_of t.in_adj.(dst) src
let neighbor_slot t ~owner ~other = index_of t.und_adj.(owner) other

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d, maxdeg=%d)" t.n (List.length t.edge_list)
    (max_degree t)
