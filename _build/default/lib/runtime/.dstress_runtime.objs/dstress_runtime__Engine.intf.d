lib/runtime/engine.mli: Dstress_circuit Dstress_crypto Dstress_mpc Dstress_util Format Graph Vertex_program
