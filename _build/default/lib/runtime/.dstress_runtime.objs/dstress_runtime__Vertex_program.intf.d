lib/runtime/vertex_program.mli: Dstress_circuit
