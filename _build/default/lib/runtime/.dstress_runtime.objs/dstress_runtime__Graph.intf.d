lib/runtime/graph.mli: Format
