lib/runtime/graph.ml: Array Format Hashtbl List
