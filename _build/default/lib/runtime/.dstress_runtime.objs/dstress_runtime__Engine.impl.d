lib/runtime/engine.ml: Array Dstress_circuit Dstress_crypto Dstress_dp Dstress_mpc Dstress_transfer Dstress_util Format Graph Hashtbl Int64 List Printf Unix Vertex_program
