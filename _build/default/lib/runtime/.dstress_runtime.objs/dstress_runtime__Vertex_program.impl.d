lib/runtime/vertex_program.ml: Array Dstress_circuit Dstress_dp
