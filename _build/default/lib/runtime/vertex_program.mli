(** The §3.1 vertex-programming model.

    A vertex program packages:
    + a per-vertex state layout ([state_bits]) and message width
      ([message_bits] — the paper's L);
    + an update function, expressed as a circuit fragment over the
      builder: given the shared state and D incoming messages it produces
      the new state and D outgoing messages (slot [s] feeds the vertex's
      [s]-th out-neighbor; unused slots carry the no-op message, which
      every vertex must emit to keep its communication pattern
      data-independent);
    + a per-vertex aggregand (the contribution the aggregation function
      sums — e.g. the vertex's dollar shortfall) and the output-noise
      parameters (sensitivity and epsilon, §4.4–4.5).

    The engine instantiates the fragments into {!Dstress_circuit.Circuit}s
    once per degree bound and evaluates them under GMW inside each block. *)

type t = {
  name : string;
  state_bits : int;
  message_bits : int;
  iterations : int;  (** communication rounds (n); a final computation
                         step runs after the last round *)
  sensitivity : int;  (** output sensitivity s, in output units *)
  epsilon : float;  (** per-run privacy cost eps_query *)
  noise_max_magnitude : int;  (** truncation bound of the in-circuit noise *)
  agg_bits : int;  (** width of the aggregate *)
  build_update :
    Dstress_circuit.Builder.t ->
    state:Dstress_circuit.Word.t ->
    incoming:Dstress_circuit.Word.t array ->
    Dstress_circuit.Word.t * Dstress_circuit.Word.t array;
      (** [(new_state, outgoing)]; [outgoing] must have the same length as
          [incoming] and each message must be [message_bits] wide *)
  build_aggregand :
    Dstress_circuit.Builder.t -> state:Dstress_circuit.Word.t -> Dstress_circuit.Word.t;
      (** per-vertex contribution, [agg_bits] wide *)
}

val update_circuit : t -> degree:int -> Dstress_circuit.Circuit.t
(** Inputs: [state_bits + degree * message_bits] (state first, then the
    message slots in order). Outputs: [state_bits + degree * message_bits].
    Raises [Invalid_argument] if the fragment returns malformed widths. *)

val partial_aggregate_circuit : t -> count:int -> Dstress_circuit.Circuit.t
(** Sums [count] vertex aggregands (inputs: [count * state_bits]); output
    is the [agg_bits]-wide partial sum, without noise — the inner level of
    an aggregation tree. *)

val combine_circuit : t -> count:int -> noised:bool -> Dstress_circuit.Circuit.t
(** Sums [count] partial aggregates (inputs: [count * agg_bits], plus — if
    [noised] — 32 uniform bits and one sign bit appended). The noised
    variant adds two-sided geometric noise with
    [alpha = exp(-epsilon / sensitivity)], which is the final DStress
    noising step. *)

val aggregate_circuit : t -> count:int -> Dstress_circuit.Circuit.t
(** Single-level aggregation: [count] vertex states in, noised aggregate
    out (inputs: [count * state_bits + 32 + 1]). *)

val noise_alpha : t -> float
