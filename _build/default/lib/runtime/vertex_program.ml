module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Noise_circuit = Dstress_dp.Noise_circuit

type t = {
  name : string;
  state_bits : int;
  message_bits : int;
  iterations : int;
  sensitivity : int;
  epsilon : float;
  noise_max_magnitude : int;
  agg_bits : int;
  build_update :
    Builder.t -> state:Word.t -> incoming:Word.t array -> Word.t * Word.t array;
  build_aggregand : Builder.t -> state:Word.t -> Word.t;
}

let noise_alpha p = exp (-.p.epsilon /. float_of_int p.sensitivity)

let update_circuit p ~degree =
  let b = Builder.create () in
  let state = Word.inputs b ~bits:p.state_bits in
  let incoming = Array.init degree (fun _ -> Word.inputs b ~bits:p.message_bits) in
  let new_state, outgoing = p.build_update b ~state ~incoming in
  if Word.width new_state <> p.state_bits then
    invalid_arg "Vertex_program.update_circuit: bad state width";
  if Array.length outgoing <> degree then
    invalid_arg "Vertex_program.update_circuit: bad outgoing count";
  Array.iter
    (fun m ->
      if Word.width m <> p.message_bits then
        invalid_arg "Vertex_program.update_circuit: bad message width")
    outgoing;
  Builder.finish b ~outputs:(Array.concat (new_state :: Array.to_list outgoing))

let partial_aggregate_circuit p ~count =
  let b = Builder.create () in
  let states = Array.init count (fun _ -> Word.inputs b ~bits:p.state_bits) in
  let terms = Array.to_list (Array.map (fun s -> p.build_aggregand b ~state:s) states) in
  let sum = Word.sum b ~bits:p.agg_bits terms in
  Builder.finish b ~outputs:sum

let noised_sum p b terms =
  let sum = Word.sum b ~bits:p.agg_bits terms in
  let uniform = Word.inputs b ~bits:Noise_circuit.default_uniform_bits in
  let sign = Builder.input b in
  Noise_circuit.add_noise b ~alpha:(noise_alpha p) ~max_magnitude:p.noise_max_magnitude
    ~value:sum ~uniform ~sign

let combine_circuit p ~count ~noised =
  let b = Builder.create () in
  let partials = Array.init count (fun _ -> Word.inputs b ~bits:p.agg_bits) in
  let terms = Array.to_list partials in
  let out =
    if noised then noised_sum p b terms else Word.sum b ~bits:p.agg_bits terms
  in
  Builder.finish b ~outputs:out

let aggregate_circuit p ~count =
  let b = Builder.create () in
  let states = Array.init count (fun _ -> Word.inputs b ~bits:p.state_bits) in
  let terms = Array.to_list (Array.map (fun s -> p.build_aggregand b ~state:s) states) in
  Builder.finish b ~outputs:(noised_sum p b terms)
