(* Shared plumbing for the figure-reproduction harness. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Prg = Dstress_crypto.Prg
module Group = Dstress_crypto.Group
module Ot_ext = Dstress_crypto.Ot_ext
module Circuit = Dstress_circuit.Circuit
module Gmw = Dstress_mpc.Gmw
module Traffic = Dstress_mpc.Traffic
module Vertex_program = Dstress_runtime.Vertex_program

let grp = Group.by_name "toy"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mb bytes = float_of_int bytes /. 1048576.0

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let subheader title = Printf.printf "--- %s ---\n%!" title

(* Evaluate one circuit under GMW with [block] parties on random shared
   inputs; returns (simulated seconds, per-party mean bytes). The
   simulated time serializes all parties; the per-party wall-clock
   estimate divides the pairwise work among the block. *)
type mpc_point = {
  block : int;
  sim_seconds : float;
  per_party_seconds : float;
  per_party_mb : float;
  ands : int;
}

let run_mpc_circuit ?(seed = "bench") circuit ~block =
  let session = Gmw.create_session ~mode:Ot_ext.Simulation grp ~parties:block ~seed in
  let prng = Prng.of_int (Hashtbl.hash seed) in
  let inputs = Bitvec.random prng circuit.Circuit.num_inputs in
  let input_shares = Gmw.share_input session inputs in
  let _, sim_seconds = time (fun () -> ignore (Gmw.eval session circuit ~input_shares)) in
  let traffic = Gmw.traffic session in
  {
    block;
    sim_seconds;
    per_party_seconds = sim_seconds *. 2.0 /. float_of_int block;
    per_party_mb = Traffic.mean_per_node traffic /. 1048576.0;
    ands = Circuit.and_count circuit;
  }

let print_mpc_table ~label points =
  Printf.printf "%-28s %8s %10s %12s %12s %10s\n" label "block" "ANDs" "sim time" "time/party"
    "MB/party";
  List.iter
    (fun p ->
      Printf.printf "%-28s %8d %10d %10.2f s %10.2f s %10.3f\n" "" p.block p.ands
        p.sim_seconds p.per_party_seconds p.per_party_mb)
    points;
  print_newline ()

(* Linear-shape check used in the printed commentary: ratio of the cost
   at the largest parameter to the smallest, versus the parameter ratio. *)
let growth_factor points value =
  match (points, List.rev points) with
  | first :: _, last :: _ -> value last /. value first
  | _ -> nan
