bench/baseline_bench.ml: Bench_util Dstress_baseline Dstress_costmodel List Printf
