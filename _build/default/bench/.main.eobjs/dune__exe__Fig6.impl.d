bench/fig6.ml: Bench_util Dstress_costmodel Dstress_graphgen Dstress_mpc Dstress_risk Dstress_runtime Format List Printf Prng
