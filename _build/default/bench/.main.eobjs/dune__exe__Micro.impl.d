bench/micro.ml: Analyze Bechamel Bench_util Benchmark Bytes Dstress_bignum Dstress_crypto Group Hashtbl List Measure Prg Printf Staged Test Time Toolkit
