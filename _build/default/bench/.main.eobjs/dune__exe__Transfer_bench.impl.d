bench/transfer_bench.ml: Array Bench_util Bitvec Dstress_crypto Dstress_mpc Dstress_transfer Group List Prg Printf Prng Traffic
