bench/main.ml: Ablation Array Baseline_bench Fig3 Fig5 Fig6 List Micro Printf Privacy_bench String Sys Transfer_bench Unix
