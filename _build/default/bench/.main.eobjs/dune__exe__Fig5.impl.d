bench/fig5.ml: Array Bench_util Dstress_graphgen Dstress_mpc Dstress_risk Dstress_runtime List Printf Prng
