bench/fig3.ml: Bench_util Bitvec Dstress_mpc Dstress_risk Group List Prg Printf Vertex_program
