bench/ablation.ml: Bench_util Bitvec Circuit Dstress_costmodel Dstress_crypto Dstress_graphgen Dstress_risk Dstress_runtime Gmw List Ot_ext Printf Prng Traffic
