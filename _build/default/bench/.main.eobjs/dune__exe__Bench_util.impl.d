bench/bench_util.ml: Dstress_circuit Dstress_crypto Dstress_mpc Dstress_runtime Dstress_util Hashtbl List Printf Unix
