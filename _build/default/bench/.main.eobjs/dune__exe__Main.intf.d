bench/main.mli:
