bench/privacy_bench.ml: Bench_util Dstress_costmodel Dstress_graphgen Dstress_risk Dstress_transfer Float Format List Printf Prng
