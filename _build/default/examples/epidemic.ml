(* Beyond finance: a custom vertex program for private epidemic sizing.
 *
 *   dune exec examples/epidemic.exe
 *
 * §3.1 notes that the vertex-program model covers many multi-domain graph
 * analyses (cloud reliability, criminal intelligence, social science).
 * This example writes a vertex program from scratch against the public
 * API: each organisation knows only whether it is "infected" (say,
 * compromised by a worm) and who its direct peers are. The program floods
 * the infection bit for a few rounds and releases a differentially
 * private count of reachable organisations — no one learns who is
 * infected, who is connected to whom, or the exact count.
 *
 * The update function is three lines of circuit: OR the incoming bits
 * into the state and forward it. *)

module Bitvec = Dstress_util.Bitvec
module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Builder = Dstress_circuit.Builder
module Word = Dstress_circuit.Word
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Vertex_program = Dstress_runtime.Vertex_program
module Topology = Dstress_graphgen.Topology

let infection_program ~iterations ~epsilon =
  {
    Vertex_program.name = "epidemic-size";
    state_bits = 1;
    message_bits = 1;
    iterations;
    sensitivity = 1 (* one org flipping its bit moves the count by <= 1 *);
    epsilon;
    noise_max_magnitude = 30;
    agg_bits = 12;
    build_update =
      (fun b ~state ~incoming ->
        let infected =
          Array.fold_left (fun acc m -> Builder.bor b acc m.(0)) state.(0) incoming
        in
        ([| infected |], Array.map (fun _ -> [| infected |]) incoming));
    build_aggregand = (fun b ~state -> Word.zero_extend b state ~bits:12);
  }

let () =
  (* A scale-free contact network of 24 organisations; three are patient
     zero. Each org knows only its own edges and status. *)
  let prng = Prng.of_int 0xE81 in
  let topo = Topology.scale_free prng ~n:24 ~attach:2 ~max_degree:6 in
  let edges =
    List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) topo.Topology.links
  in
  let graph = Graph.create ~n:24 ~edges in
  let infected0 = [ 0; 7; 13 ] in
  let states =
    Array.init 24 (fun i -> Bitvec.of_int ~bits:1 (if List.mem i infected0 then 1 else 0))
  in
  let iterations = 4 in
  let program = infection_program ~iterations ~epsilon:1.0 in
  (* Ground truth for comparison (the regulator's view). *)
  let truth =
    Engine.run_plaintext program ~degree_bound:(Graph.max_degree graph) ~graph
      ~initial_states:states
  in
  Printf.printf "true epidemic size after %d hops: %d of 24 organisations\n" iterations truth;
  let config =
    Engine.default_config (Group.by_name "toy") ~k:2
      ~degree_bound:(Graph.max_degree graph) ~seed:"epidemic"
  in
  let report = Engine.run config program ~graph ~initial_states:states in
  Printf.printf "privately released size: %d (eps = 1.0)\n" report.Engine.output;
  Printf.printf
    "update circuit: %d AND gates — tiny, because flooding is just ORs;\n\
     the protocol cost is dominated by the topology-hiding transfers.\n"
    report.Engine.update_stats.Dstress_circuit.Circuit.ands
