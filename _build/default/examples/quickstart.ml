(* Quickstart: a five-bank Eisenberg–Noe stress test, end to end.
 *
 *   dune exec examples/quickstart.exe
 *
 * Five banks hold cash and owe each other money; bank 0 has just lost its
 * liquidity. Each bank only knows its own balance sheet. DStress computes
 * the total dollar shortfall (TDS) of the system without any bank (or
 * block of banks) learning anything beyond the differentially private
 * final number. *)

module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program

let () =
  (* 1. The (secret, distributed) financial network: each (i, j, amount)
     is known only to banks i and j. *)
  let economy =
    {
      Reference.en_n = 5;
      cash = [| 0.0; 25.0; 40.0; 15.0; 30.0 |];
      debts =
        [
          (0, 1, 30.0); (0, 2, 20.0);  (* the distressed bank owes 50 *)
          (1, 2, 15.0); (2, 3, 25.0); (3, 4, 10.0); (4, 0, 5.0);
        ];
    }
  in
  (* 2. What a hypothetical all-seeing regulator would compute. *)
  let oracle = Reference.eisenberg_noe economy in
  Printf.printf "cleartext oracle:    TDS = $%.2f\n%!" oracle.Reference.en_tds;

  (* 3. The same computation under DStress. Dollar amounts become 12-bit
     fixed-point words; the update function becomes a boolean circuit
     evaluated under GMW inside each bank's block; messages travel through
     the topology-hiding transfer protocol; and the aggregate is released
     with Laplace-style noise calibrated to sensitivity/epsilon. *)
  let l = 12 in
  let graph = En_program.graph_of_instance economy in
  let degree = Graph.max_degree graph in
  let program =
    En_program.make ~epsilon:2.0 (* demo-friendly noise *) ~sensitivity:10 ~l ~degree
      ~iterations:5 ()
  in
  let states = En_program.encode_instance economy ~graph ~l ~degree ~scale:0.25 in
  let config =
    Engine.default_config (Group.by_name "toy") ~k:2 ~degree_bound:degree ~seed:"quickstart"
  in
  let report = Engine.run config program ~graph ~initial_states:states in
  let tds = En_program.decode_output ~scale:0.25 report.Engine.output in
  Printf.printf "DStress (eps = 2.0): TDS = $%.2f  (noise: $%+.2f)\n%!" tds
    (tds -. oracle.Reference.en_tds);

  (* 4. What it cost. *)
  Printf.printf "\n%!";
  Format.printf "%a@." Engine.pp_report report;
  Printf.printf
    "\nNo participant saw any other bank's balance sheet, any intermediate\n\
     state, or the exact aggregate: every value above except the noised TDS\n\
     stayed XOR-shared across blocks of %d nodes.\n"
    3
