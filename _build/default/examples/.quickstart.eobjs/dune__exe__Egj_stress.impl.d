examples/egj_stress.ml: Array Dstress_crypto Dstress_risk Dstress_runtime Dstress_util List Printf String
