examples/quickstart.ml: Dstress_crypto Dstress_risk Dstress_runtime Format Printf
