examples/quickstart.mli:
