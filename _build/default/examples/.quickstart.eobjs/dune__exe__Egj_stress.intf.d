examples/egj_stress.mli:
