examples/systemic_risk.mli:
