examples/epidemic.mli:
