examples/epidemic.ml: Array Dstress_circuit Dstress_crypto Dstress_graphgen Dstress_runtime Dstress_util List Printf
