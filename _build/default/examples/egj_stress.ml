(* Equity cross-holdings contagion (Elliott–Golub–Jackson, §4.3).
 *
 *   dune exec examples/egj_stress.exe
 *
 * Unlike Eisenberg–Noe's debt clearing, EGJ models banks holding equity in
 * each other: a drop in one bank's primitive assets devalues its equity,
 * which devalues its shareholders, and a bank whose valuation falls below
 * a threshold takes a further discontinuous penalty (a downgrade). This
 * example builds a six-bank economy with mutual 20% cross-holdings, shocks
 * one bank, and measures the shortfall both in the clear and under the
 * full DStress protocol. *)

module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Reference = Dstress_risk.Reference
module Egj_program = Dstress_risk.Egj_program

let economy ~shocked =
  let n = 6 in
  (* A ring of cross-holdings: bank i owns 20% of its two neighbours. *)
  let holdings =
    List.concat_map
      (fun i -> [ (i, (i + 1) mod n, 0.2); (i, (i + n - 1) mod n, 0.2) ])
      (List.init n (fun i -> i))
  in
  let base = Array.make n 60.0 in
  if shocked then base.(0) <- 10.0;
  (* Healthy valuations solve v = base + 0.2 v_left + 0.2 v_right; by
     symmetry v = 60 / 0.6 = 100 for the unshocked economy. *)
  let orig_val = Array.make n 100.0 in
  {
    Reference.egj_n = n;
    base_assets = base;
    orig_val;
    threshold = Array.map (fun v -> 0.85 *. v) orig_val;
    penalty = Array.make n 12.0;
    holdings;
  }

let () =
  let healthy = Reference.elliott_golub_jackson (economy ~shocked:false) in
  let stressed = Reference.elliott_golub_jackson (economy ~shocked:true) in
  Printf.printf "healthy economy:  TDS = $%.2f (no bank below threshold)\n"
    healthy.Reference.egj_tds;
  Printf.printf "shocked economy:  TDS = $%.2f, failed banks:" stressed.Reference.egj_tds;
  Array.iteri (fun i f -> if f then Printf.printf " %d" i) stressed.Reference.failed;
  Printf.printf "\n  (monotone convergence: %b, settled by round %d)\n\n"
    stressed.Reference.monotone stressed.Reference.egj_rounds_to_converge;

  (* Under MPC: valuations are 16-bit fixed point with 8 fractional bits;
     discounts travel as L-bit fractions through the transfer protocol. *)
  let inst = economy ~shocked:true in
  let l = 16 and frac = 8 and scale = 1.0 in
  let graph = Egj_program.graph_of_instance inst in
  let degree = Graph.max_degree graph in
  let program =
    Egj_program.make ~epsilon:1.5 ~sensitivity:20 ~noise_max:400 ~l ~frac ~degree
      ~iterations:6 ()
  in
  let states = Egj_program.encode_instance inst ~graph ~l ~frac ~degree ~scale in
  let config =
    Engine.default_config (Group.by_name "toy") ~k:2 ~degree_bound:degree ~seed:"egj"
  in
  let report = Engine.run config program ~graph ~initial_states:states in
  Printf.printf "DStress TDS: $%.2f (eps = 1.5; EGJ sensitivity bound 2/r per §4.4)\n"
    (Egj_program.decode_output ~scale ~frac report.Engine.output);
  Printf.printf "phases: %s\n"
    (String.concat ", "
       (List.map
          (fun (ph, s) -> Printf.sprintf "%s %.2fs" (Engine.phase_name ph) s)
          report.Engine.phase_seconds))
