(* Systemic-risk monitoring on a two-tier banking network (Appendix C).
 *
 *   dune exec examples/systemic_risk.exe
 *
 * A 50-bank economy (10 money-center banks densely interconnected, 40
 * regional banks each borrowing from one or two of them) is hit by two
 * different shocks. The "absorbed" shock wipes a few regional banks; the
 * "cascade" shock also drains the core's buffers, so the same regional
 * failures take the center down. The regulator's question — did the core
 * survive? — is answered by the total dollar shortfall, which DStress can
 * compute without anyone disclosing their books.
 *
 * The cleartext oracle runs at full scale; the MPC demonstration runs a
 * downsized instance so the example finishes in seconds. *)

module Prng = Dstress_util.Prng
module Group = Dstress_crypto.Group
module Graph = Dstress_runtime.Graph
module Engine = Dstress_runtime.Engine
module Reference = Dstress_risk.Reference
module En_program = Dstress_risk.En_program
module Sensitivity = Dstress_risk.Sensitivity
module Topology = Dstress_graphgen.Topology
module Banking = Dstress_graphgen.Banking

let () =
  Printf.printf "== Appendix-C scenario: 10 core + 40 regional banks ==\n\n";
  List.iter
    (fun (name, shock) ->
      let inst, topo = Banking.appendix_c_network (Prng.of_int 0xC0FFEE) shock in
      let r = Reference.eisenberg_noe ~iterations:12 inst in
      let impaired_core =
        List.length (List.filter (fun c -> r.Reference.prorate.(c) < 0.999) topo.Topology.core)
      in
      Printf.printf "%-9s shock: TDS = $%7.2f, %d/10 core banks impaired\n" name
        r.Reference.en_tds impaired_core)
    [ ("absorbed", Banking.Absorbed); ("cascade", Banking.Cascade) ];
  Printf.printf
    "\nThe iteration budget: Eisenberg-Noe provably settles within N rounds, and on\n\
     two-tier networks log2(N) rounds already capture the TDS (Appendix C), so the\n\
     fixed iteration count DStress needs (§3.7) costs little.\n\n";

  (* The same measurement under MPC, on a downsized economy. *)
  Printf.printf "== The cascade measured privately (8-bank downsized economy) ==\n\n";
  let prng = Prng.of_int 0x5151 in
  let topo = Topology.core_periphery prng ~core:3 ~periphery:5 () in
  let inst = Banking.en_of_topology prng topo () in
  let inst = Banking.shock_en prng inst topo Banking.Cascade in
  let oracle = Reference.eisenberg_noe ~iterations:6 inst in
  let l = 12 and scale = 0.25 in
  let graph = En_program.graph_of_instance inst in
  let degree = Graph.max_degree graph in
  (* Dollar-differential privacy: protect $1 reallocations in any single
     portfolio (granularity T), at the leverage-derived sensitivity. Note
     the proportions: in the real deployment T is $1B against a ~$500B
     TDS; here T is $1 against a ~$30 shortfall, so the relative noise is
     substantially larger — scale the granularity down or epsilon up when
     the aggregate is small. *)
  let leverage = 0.1 in
  let epsilon = 2.0 in
  let s_units =
    Sensitivity.units
      ~sensitivity:(Sensitivity.eisenberg_noe ~leverage)
      ~scale_dollars:scale ~granularity_dollars:1.0
  in
  let program =
    En_program.make ~epsilon ~sensitivity:s_units ~noise_max:800 ~l ~degree
      ~iterations:5 ()
  in
  let states = En_program.encode_instance inst ~graph ~l ~degree ~scale in
  let config =
    Engine.default_config (Group.by_name "toy") ~k:2 ~degree_bound:degree
      ~seed:"systemic-risk"
  in
  let report = Engine.run config program ~graph ~initial_states:states in
  Printf.printf "oracle TDS:  $%.2f\n" oracle.Reference.en_tds;
  Printf.printf "DStress TDS: $%.2f  (eps = %.1f, sensitivity %d units, noise scale $%.1f)\n"
    (En_program.decode_output ~scale report.Engine.output)
    epsilon s_units
    (float_of_int s_units *. scale /. epsilon);
  Printf.printf "transfer failures: %d, MPC AND gates: %d, traffic: %.2f MB total\n"
    report.Engine.transfer_failures report.Engine.mpc_and_gates
    (float_of_int (Dstress_mpc.Traffic.total report.Engine.traffic) /. 1048576.0)
